// Scheduler behaviour tests: AFQ fairness, Split-Deadline latency
// protection, Split-Token / SCS-Token isolation and accounting.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/block/block_deadline.h"
#include "src/block/cfq.h"
#include "src/block/noop.h"
#include "src/core/storage_stack.h"
#include "src/sched/afq.h"
#include "src/sched/scs_token.h"
#include "src/sched/split_deadline.h"
#include "src/sched/split_noop.h"
#include "src/sched/split_token.h"
#include "src/sim/simulator.h"
#include "src/workload/workloads.h"

namespace splitio {
namespace {

TEST(StrideState, ChargesInverselyToWeight) {
  StrideState stride;
  stride.SetWeight(1, 8);
  stride.SetWeight(2, 1);
  stride.Charge(1, 800);
  stride.Charge(2, 100);
  EXPECT_DOUBLE_EQ(stride.Pass(1), 100.0);
  EXPECT_DOUBLE_EQ(stride.Pass(2), 100.0);
  stride.SetPassAtLeast(1, 500.0);
  EXPECT_DOUBLE_EQ(stride.Pass(1), 500.0);
  stride.SetPassAtLeast(1, 100.0);  // never lowers
  EXPECT_DOUBLE_EQ(stride.Pass(1), 500.0);
}

TEST(TokenBucket, RefillAndDebt) {
  TokenBucket bucket(1000.0, 500.0);  // 1000 B/s, 500 B burst
  EXPECT_TRUE(bucket.CanAdmit());
  bucket.Charge(2000);  // deep debt
  EXPECT_FALSE(bucket.CanAdmit());
  bucket.Refill(0);
  bucket.Refill(Sec(1));  // +1000
  EXPECT_FALSE(bucket.CanAdmit());
  bucket.Refill(Sec(2));  // +1000, capped at 500
  EXPECT_TRUE(bucket.CanAdmit());
  EXPECT_DOUBLE_EQ(bucket.balance(), 500.0);
}

// ---------- AFQ ----------

// Figure 11(b): asynchronous sequential writers with priorities 0..7.
// CFQ ignores priorities (everything arrives via writeback); AFQ respects
// them via split tags + syscall-level stride admission.
double AsyncWriteDeviation(bool use_afq) {
  Simulator sim;
  StackConfig config;
  config.cache.total_ram = 2ULL << 30;  // modest write buffer
  CpuModel cpu(8);
  std::unique_ptr<StorageStack> stack;
  if (use_afq) {
    stack = std::make_unique<StorageStack>(
        config, &cpu, std::make_unique<AfqScheduler>(), nullptr);
  } else {
    stack = std::make_unique<StorageStack>(config, &cpu, nullptr,
                                           std::make_unique<CfqElevator>());
  }
  stack->Start();
  std::vector<WorkloadStats> stats(8);
  std::vector<Process*> procs;
  auto writer = [&](int prio) -> Task<void> {
    Process* p = procs[static_cast<size_t>(prio)];
    int64_t ino = co_await stack->kernel().Creat(*p, "/w" + std::to_string(prio));
    co_await SequentialWriter(stack->kernel(), *p, ino, 256 * 1024, Sec(20),
                              &stats[static_cast<size_t>(prio)]);
  };
  for (int prio = 0; prio < 8; ++prio) {
    Process* p = stack->NewProcess("writer");
    p->set_priority(prio);
    procs.push_back(p);
  }
  for (int prio = 0; prio < 8; ++prio) {
    sim.Spawn(writer(prio));
  }
  sim.Run(Sec(20));
  double total = 0;
  for (const auto& s : stats) {
    total += static_cast<double>(s.bytes);
  }
  // Deviation from the weighted-fair goal, averaged across priorities.
  double deviation = 0;
  for (int prio = 0; prio < 8; ++prio) {
    double goal = static_cast<double>(8 - prio) / 36.0;
    double got = static_cast<double>(stats[static_cast<size_t>(prio)].bytes) / total;
    deviation += std::abs(got - goal) / goal;
  }
  return deviation / 8;
}

TEST(Afq, RespectsPrioritiesForBufferedWritesWhereCfqFails) {
  double cfq_dev = AsyncWriteDeviation(false);
  double afq_dev = AsyncWriteDeviation(true);
  // CFQ: everything collapses to the writeback queue -> large deviation.
  EXPECT_GT(cfq_dev, 0.5);
  // AFQ: close to the goal split.
  EXPECT_LT(afq_dev, 0.35);
  EXPECT_GT(cfq_dev, 2 * afq_dev);
}

// ---------- Split-Token ----------

struct TokenHarness {
  explicit TokenHarness(double rate_bytes_per_sec, bool scs = false,
                        StackConfig cfg = StackConfig()) {
    cpu = std::make_unique<CpuModel>(8);
    if (scs) {
      auto s = std::make_unique<ScsTokenScheduler>();
      s->SetAccountLimit(1, rate_bytes_per_sec);
      scs_sched = s.get();
      stack = std::make_unique<StorageStack>(cfg, cpu.get(), std::move(s),
                                             nullptr);
    } else {
      auto s = std::make_unique<SplitTokenScheduler>();
      s->SetAccountLimit(1, rate_bytes_per_sec);
      split_sched = s.get();
      stack = std::make_unique<StorageStack>(cfg, cpu.get(), std::move(s),
                                             nullptr);
    }
    stack->Start();
  }
  std::unique_ptr<CpuModel> cpu;
  std::unique_ptr<StorageStack> stack;
  SplitTokenScheduler* split_sched = nullptr;
  ScsTokenScheduler* scs_sched = nullptr;
};

TEST(SplitToken, ThrottledSequentialWriterConvergesToRate) {
  Simulator sim;
  TokenHarness h(10.0 * 1024 * 1024);  // 10 MB/s
  Process* b = h.stack->NewProcess("B");
  b->set_account(1);
  WorkloadStats stats;
  auto body = [&]() -> Task<void> {
    int64_t ino = co_await h.stack->kernel().Creat(*b, "/b");
    co_await SequentialWriter(h.stack->kernel(), *b, ino, 1 << 20, Sec(30),
                              &stats);
  };
  sim.Spawn(body());
  sim.Run(Sec(30));
  double mbps = stats.MBps(0, Sec(30));
  EXPECT_GT(mbps, 6.0);
  EXPECT_LT(mbps, 14.0);
}

TEST(SplitToken, CacheHitsAreFree) {
  Simulator sim;
  TokenHarness h(1.0 * 1024 * 1024);  // tight 1 MB/s limit
  Process* b = h.stack->NewProcess("B");
  b->set_account(1);
  WorkloadStats stats;
  auto body = [&]() -> Task<void> {
    // Pre-warmed working set: steady-state rereads are pure cache hits,
    // which the split framework never taxes (they cause no block I/O).
    int64_t ino = h.stack->fs().CreatePreallocated("/m", 64 << 20);
    for (uint64_t idx = 0; idx < (64ULL << 20) / kPageSize; ++idx) {
      h.stack->cache().InsertClean(ino, idx);
    }
    co_await MemReader(h.stack->kernel(), *b, ino, 64 << 20, 1 << 20, Sec(10),
                       &stats);
  };
  sim.Spawn(body());
  sim.Run(Sec(10));
  double mbps = stats.MBps(0, Sec(10));
  EXPECT_GT(mbps, 100.0);  // far above the 1 MB/s cap
}

// The unmodified SCS framework (no file-system modification) charges every
// read system call, cache hit or not.
TEST(ScsToken, UnmodifiedVariantChargesCacheHits) {
  Simulator sim;
  StackConfig cfg;
  CpuModel cpu(8);
  ScsTokenConfig scs_cfg;
  scs_cfg.cache_hit_exemption = false;
  auto sched = std::make_unique<ScsTokenScheduler>(scs_cfg);
  sched->SetAccountLimit(1, 1.0 * 1024 * 1024);
  StorageStack stack(cfg, &cpu, std::move(sched), nullptr);
  stack.Start();
  Process* b = stack.NewProcess("B");
  b->set_account(1);
  WorkloadStats stats;
  auto body = [&]() -> Task<void> {
    int64_t ino = stack.fs().CreatePreallocated("/m", 16 << 20);
    for (uint64_t idx = 0; idx < (16ULL << 20) / kPageSize; ++idx) {
      stack.cache().InsertClean(ino, idx);
    }
    co_await MemReader(stack.kernel(), *b, ino, 16 << 20, 1 << 20, Sec(10),
                       &stats);
  };
  sim.Spawn(body());
  sim.Run(Sec(10));
  double mbps = stats.MBps(0, Sec(10));
  EXPECT_LT(mbps, 5.0);
}

// With the paper's file-system modification [19], SCS exempts cache hits
// from token charges but still runs its logic (CPU) on every call.
TEST(ScsToken, ModifiedVariantExemptsCacheHits) {
  Simulator sim;
  TokenHarness h(1.0 * 1024 * 1024, /*scs=*/true);
  Process* b = h.stack->NewProcess("B");
  b->set_account(1);
  WorkloadStats stats;
  auto body = [&]() -> Task<void> {
    int64_t ino = h.stack->fs().CreatePreallocated("/m", 16 << 20);
    for (uint64_t idx = 0; idx < (16ULL << 20) / kPageSize; ++idx) {
      h.stack->cache().InsertClean(ino, idx);
    }
    co_await MemReader(h.stack->kernel(), *b, ino, 16 << 20, 1 << 20, Sec(10),
                       &stats);
  };
  sim.Spawn(body());
  sim.Run(Sec(10));
  double mbps = stats.MBps(0, Sec(10));
  EXPECT_GT(mbps, 100.0);  // hits are free of tokens (though CPU-taxed)
}

TEST(SplitToken, OverwritesOfBufferedDataAreFree) {
  Simulator sim;
  TokenHarness h(1.0 * 1024 * 1024);
  Process* b = h.stack->NewProcess("B");
  b->set_account(1);
  WorkloadStats stats;
  auto body = [&]() -> Task<void> {
    // 2 MB region: the first pass is charged (new write work), everything
    // after is overwrites of buffered data — free under split scheduling.
    int64_t ino = co_await h.stack->kernel().Creat(*b, "/w");
    co_await MemWriter(h.stack->kernel(), *b, ino, 2 << 20, 1 << 20, Sec(10),
                       &stats);
  };
  sim.Spawn(body());
  sim.Run(Sec(10));
  double mbps = stats.MBps(0, Sec(10));
  EXPECT_GT(mbps, 50.0);  // in-memory overwrites are not new disk work
}

TEST(ScsToken, ThrottlesBufferedOverwrites) {
  Simulator sim;
  TokenHarness h(1.0 * 1024 * 1024, /*scs=*/true);
  Process* b = h.stack->NewProcess("B");
  b->set_account(1);
  WorkloadStats stats;
  auto body = [&]() -> Task<void> {
    int64_t ino = co_await h.stack->kernel().Creat(*b, "/w");
    co_await MemWriter(h.stack->kernel(), *b, ino, 16 << 20, 1 << 20, Sec(10),
                       &stats);
  };
  sim.Spawn(body());
  sim.Run(Sec(10));
  double mbps = stats.MBps(0, Sec(10));
  EXPECT_LT(mbps, 5.0);
}

TEST(SplitToken, RandomWritesChargedMoreThanSequential) {
  auto run = [](bool random) {
    Simulator sim;
    TokenHarness h(10.0 * 1024 * 1024);
    Process* b = h.stack->NewProcess("B");
    b->set_account(1);
    WorkloadStats stats;
    auto body = [&]() -> Task<void> {
      int64_t ino = co_await h.stack->kernel().Creat(*b, "/b");
      if (random) {
        co_await RandomWriter(h.stack->kernel(), *b, ino, 1ULL << 30, 4096, 7,
                              Sec(30), &stats);
      } else {
        co_await SequentialWriter(h.stack->kernel(), *b, ino, 1 << 20, Sec(30),
                                  &stats);
      }
    };
    sim.Spawn(body());
    sim.Run(Sec(30));
    return stats.MBps(0, Sec(30));
  };
  double seq = run(false);
  double rnd = run(true);
  // Random writes cost far more tokens per byte: achieved bytes collapse.
  EXPECT_LT(rnd * 5, seq);
}

TEST(SplitToken, BufferFreeRefundsTokens) {
  Simulator sim;
  StackConfig cfg;
  cfg.cache.writeback_daemon = false;  // keep data buffered
  TokenHarness h(1.0 * 1024 * 1024, false, cfg);
  Process* b = h.stack->NewProcess("B");
  b->set_account(1);
  auto body = [&]() -> Task<void> {
    int64_t ino = co_await h.stack->kernel().Creat(*b, "/tmp");
    co_await h.stack->kernel().Write(*b, *&ino, 0, 4 << 20);
    double after_write = h.split_sched->account_balance(1);
    co_await h.stack->kernel().Unlink(*b, ino);
    double after_unlink = h.split_sched->account_balance(1);
    EXPECT_GT(after_unlink, after_write + 3.0 * (1 << 20));
  };
  sim.Spawn(body());
  sim.Run(Sec(5));
}

// ---------- Split-Deadline ----------

// Figure 5 / 12: A's small fsyncs against B's big fsyncs.
Nanos SmallFsyncP99(bool use_split) {
  Simulator sim;
  StackConfig config;
  CpuModel cpu(8);
  std::unique_ptr<StorageStack> stack;
  if (use_split) {
    SplitDeadlineConfig sd;
    sd.own_writeback = true;
    config.cache.writeback_daemon = false;
    stack = std::make_unique<StorageStack>(
        config, &cpu, std::make_unique<SplitDeadlineScheduler>(sd), nullptr);
  } else {
    BlockDeadlineConfig bd;
    bd.read_expiry = Msec(20);
    bd.write_expiry = Msec(20);
    stack = std::make_unique<StorageStack>(
        config, &cpu, nullptr, std::make_unique<BlockDeadlineElevator>(bd));
  }
  stack->Start();
  Process* a = stack->NewProcess("A");
  a->set_fsync_deadline(Msec(25));
  Process* b = stack->NewProcess("B");
  b->set_fsync_deadline(Msec(800));
  WorkloadStats a_stats;
  WorkloadStats b_stats;
  auto small = [&]() -> Task<void> {
    int64_t ino = co_await stack->kernel().Creat(*a, "/log");
    co_await AppendFsyncLoop(stack->kernel(), *a, ino, 4096, Sec(20),
                             &a_stats);
  };
  auto big = [&]() -> Task<void> {
    int64_t ino = co_await stack->kernel().Creat(*b, "/db");
    co_await stack->kernel().Write(*b, ino, 0, 64 << 20);  // create region
    co_await BigWriteFsyncLoop(stack->kernel(), *b, ino, 64 << 20, 4 << 20,
                               4096, Msec(100), 11, Sec(20), &b_stats);
  };
  sim.Spawn(small());
  sim.Spawn(big());
  sim.Run(Sec(20));
  if (a_stats.latency.count() == 0) {
    return kNanosMax;
  }
  return a_stats.latency.Percentile(99);
}

TEST(SplitDeadline, ProtectsSmallFsyncsFromBigOnes) {
  Nanos block_p99 = SmallFsyncP99(false);
  Nanos split_p99 = SmallFsyncP99(true);
  // Split-Deadline keeps A's tail near its 25 ms deadline; Block-Deadline
  // inherits B's multi-hundred-ms flushes.
  EXPECT_LT(split_p99, Msec(80));
  EXPECT_GT(block_p99, split_p99 * 2);
}

TEST(SplitDeadline, OwnWritebackEventuallyCleansDirtyData) {
  Simulator sim;
  StackConfig config;
  config.cache.writeback_daemon = false;
  SplitDeadlineConfig sd;
  sd.own_writeback = true;
  CpuModel cpu(8);
  StorageStack stack(config, &cpu,
                     std::make_unique<SplitDeadlineScheduler>(sd), nullptr);
  stack.Start();
  Process* p = stack.NewProcess("app");
  auto body = [&]() -> Task<void> {
    int64_t ino = co_await stack.kernel().Creat(*p, "/f");
    co_await stack.kernel().Write(*p, ino, 0, 8 << 20);
  };
  sim.Spawn(body());
  sim.Run(Sec(10));
  EXPECT_EQ(stack.cache().dirty_pages(), 0u);
}

// ---------- Split no-op ----------

TEST(SplitNoop, HooksFireWithoutChangingBehaviour) {
  Simulator sim;
  StackConfig config;
  CpuModel cpu(8);
  auto sched = std::make_unique<SplitNoopScheduler>();
  SplitNoopScheduler* noop = sched.get();
  StorageStack stack(config, &cpu, std::move(sched), nullptr);
  stack.Start();
  Process* p = stack.NewProcess("app");
  auto body = [&]() -> Task<void> {
    int64_t ino = co_await stack.kernel().Creat(*p, "/f");
    co_await stack.kernel().Write(*p, ino, 0, 16 * kPageSize);
    co_await stack.kernel().Fsync(*p, ino);
  };
  sim.Spawn(body());
  sim.Run(Sec(5));
  EXPECT_EQ(noop->dirty_events(), 16u);
  EXPECT_EQ(stack.cache().dirty_pages(), 0u);
}

}  // namespace
}  // namespace splitio
