// Trace ingestion: parser strictness, reconstruction, replay determinism,
// and the tier-1 replay of the committed sample traces under every
// scheduler with the full oracle battery.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "src/stress/oracles.h"
#include "src/stress/trace_repro.h"
#include "src/workload/trace/blktrace.h"
#include "src/workload/trace/csv.h"
#include "src/workload/trace/parse.h"
#include "src/workload/trace/reconstruct.h"
#include "src/workload/trace/replay.h"

#ifndef SPLITIO_TEST_DATA_DIR
#define SPLITIO_TEST_DATA_DIR "tests/data"
#endif

namespace splitio {
namespace ingest {
namespace {

std::string DataPath(const char* name) {
  return std::string(SPLITIO_TEST_DATA_DIR) + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// --- blktrace parsing -----------------------------------------------------

TEST(BlktraceParse, CommittedSampleParses) {
  ParsedTrace trace;
  TraceError err;
  ASSERT_TRUE(ParseBlktraceText(ReadFile(DataPath("sample_blktrace.txt")),
                                &trace, &err))
      << err.Describe();
  // Q records minus the pure-flush/plug lines that carry no payload are
  // data records; FN queue records become flushes.
  EXPECT_GT(trace.records.size(), 30u);
  EXPECT_GT(trace.lines_skipped, 0u);
  EXPECT_EQ(trace.lines_total, 50u);
  // First record is the first Q line, a journal write; times are relative
  // to the first record *line* in the file (the G at 0.000000000), so the
  // Q at 0.000001000 lands at 1000 ns.
  EXPECT_EQ(trace.records.front().when, 1000);
  EXPECT_EQ(trace.records.front().pid, 697);
  EXPECT_EQ(trace.records.front().kind, TraceOpKind::kWrite);
  EXPECT_EQ(trace.records.front().offset, 223490ull * 512);
  EXPECT_EQ(trace.records.front().len, 8ull * 512);
  // Timestamps are non-decreasing and relative to the first record.
  Nanos prev = -1;
  int flushes = 0;
  for (const TraceRecord& r : trace.records) {
    EXPECT_GE(r.when, prev);
    prev = r.when;
    flushes += r.kind == TraceOpKind::kFlush ? 1 : 0;
    if (r.kind == TraceOpKind::kFlush) {
      EXPECT_EQ(r.len, 0u);
    } else {
      EXPECT_GT(r.len, 0u);
    }
  }
  EXPECT_EQ(flushes, 3);  // the three "Q FN" lines
}

TEST(BlktraceParse, TruncatedLineFailsCleanly) {
  ParsedTrace trace;
  TraceError err;
  std::string text =
      "  8,0 1 1 0.000001000 697 Q W 223490 + 8 [kjournald]\n"
      "  8,0 1 2 0.000002000 697 Q W 223498 +\n";
  EXPECT_FALSE(ParseBlktraceText(text, &trace, &err));
  EXPECT_TRUE(trace.records.empty());  // never a partial trace
  EXPECT_EQ(err.line, 2u);
  EXPECT_NE(err.message.find("truncated"), std::string::npos)
      << err.Describe();
  // The byte offset points at the offending line's start.
  EXPECT_EQ(err.offset, text.find("  8,0 1 2"));
}

TEST(BlktraceParse, OutOfOrderTimestampFails) {
  ParsedTrace trace;
  TraceError err;
  EXPECT_FALSE(ParseBlktraceText(
      "  8,0 1 1 0.000005000 697 Q W 100 + 8 [a]\n"
      "  8,0 1 2 0.000004000 697 Q W 200 + 8 [a]\n",
      &trace, &err));
  EXPECT_TRUE(trace.records.empty());
  EXPECT_EQ(err.line, 2u);
  EXPECT_NE(err.message.find("out-of-order"), std::string::npos);
}

TEST(BlktraceParse, UnknownActionCodeFails) {
  ParsedTrace trace;
  TraceError err;
  EXPECT_FALSE(ParseBlktraceText(
      "  8,0 1 1 0.000001000 697 Z W 100 + 8 [a]\n", &trace, &err));
  EXPECT_EQ(err.line, 1u);
  EXPECT_NE(err.message.find("unknown record type"), std::string::npos);
}

TEST(BlktraceParse, UnknownRwbsFlagFails) {
  ParsedTrace trace;
  TraceError err;
  EXPECT_FALSE(ParseBlktraceText(
      "  8,0 1 1 0.000001000 697 Q ? 100 + 8 [a]\n", &trace, &err));
  EXPECT_NE(err.message.find("unknown record type"), std::string::npos);
}

TEST(BlktraceParse, CrlfLineEndingsAccepted) {
  ParsedTrace trace;
  TraceError err;
  ASSERT_TRUE(ParseBlktraceText(
      "  8,0 1 1 0.000001000 697 Q W 100 + 8 [a]\r\n"
      "  8,0 1 2 0.000002000 697 Q R 200 + 16 [b]\r\n",
      &trace, &err))
      << err.Describe();
  ASSERT_EQ(trace.records.size(), 2u);
  EXPECT_EQ(trace.records[1].kind, TraceOpKind::kRead);
  EXPECT_EQ(trace.records[1].len, 16ull * 512);
}

TEST(BlktraceParse, OverlongFieldFails) {
  ParsedTrace trace;
  TraceError err;
  std::string text = "  8,0 1 1 0.000001000 697 Q W " +
                     std::string(3000, '7') + " + 8 [a]\n";
  EXPECT_FALSE(ParseBlktraceText(text, &trace, &err));
  EXPECT_NE(err.message.find("overlong"), std::string::npos);
}

TEST(BlktraceParse, BadDeviceAndTimestampFieldsFail) {
  ParsedTrace trace;
  TraceError err;
  EXPECT_FALSE(ParseBlktraceText(
      "  80 1 1 0.000001000 697 Q W 100 + 8 [a]\n", &trace, &err));
  EXPECT_NE(err.message.find("device"), std::string::npos);
  EXPECT_FALSE(ParseBlktraceText(
      "  8,0 1 1 notatime 697 Q W 100 + 8 [a]\n", &trace, &err));
  EXPECT_NE(err.message.find("timestamp"), std::string::npos);
}

TEST(BlktraceParse, EmptyInputFails) {
  ParsedTrace trace;
  TraceError err;
  EXPECT_FALSE(ParseBlktraceText("", &trace, &err));
  EXPECT_FALSE(ParseBlktraceText("\n\n  \n", &trace, &err));
}

// --- MSR CSV parsing ------------------------------------------------------

TEST(MsrCsvParse, CommittedSampleParses) {
  ParsedTrace trace;
  TraceError err;
  ASSERT_TRUE(
      ParseMsrCsv(ReadFile(DataPath("sample_msr.csv")), &trace, &err))
      << err.Describe();
  EXPECT_EQ(trace.records.size(), 40u);  // header skipped
  EXPECT_EQ(trace.lines_skipped, 1u);
  // Filetime ticks are 100 ns: the second record is 11000 ticks after the
  // first.
  EXPECT_EQ(trace.records[0].when, 0);
  EXPECT_EQ(trace.records[1].when, 11000 * 100);
  EXPECT_EQ(trace.records[0].kind, TraceOpKind::kRead);
  EXPECT_EQ(trace.records[0].offset, 383496192ull);
  EXPECT_EQ(trace.records[0].len, 32768ull);
  // Streams: (hm,1) -> 1, (hm,0) -> 2, (prxy,0) -> 3, by first appearance.
  EXPECT_EQ(trace.records[0].pid, 1);
  EXPECT_EQ(trace.records[5].pid, 2);
  EXPECT_EQ(trace.records[8].pid, 3);
}

TEST(MsrCsvParse, TruncatedAndOverlongLinesFail) {
  ParsedTrace trace;
  TraceError err;
  EXPECT_FALSE(ParseMsrCsv("128166372003061629,hm,1,Read,4096\n", &trace,
                           &err));
  EXPECT_EQ(err.line, 1u);
  EXPECT_NE(err.message.find("truncated"), std::string::npos);
  std::string overlong = "128166372003061629," + std::string(1000, 'h') +
                         ",1,Read,0,4096,100\n";
  EXPECT_FALSE(ParseMsrCsv(overlong, &trace, &err));
  EXPECT_NE(err.message.find("overlong"), std::string::npos);
}

TEST(MsrCsvParse, UnknownTypeFails) {
  ParsedTrace trace;
  TraceError err;
  EXPECT_FALSE(ParseMsrCsv("128166372003061629,hm,1,Trim,0,4096,100\n",
                           &trace, &err));
  EXPECT_NE(err.message.find("unknown record type"), std::string::npos);
}

TEST(MsrCsvParse, OutOfOrderTimestampFails) {
  ParsedTrace trace;
  TraceError err;
  EXPECT_FALSE(ParseMsrCsv(
      "128166372003061629,hm,1,Read,0,4096,100\n"
      "128166372003061628,hm,1,Read,0,4096,100\n",
      &trace, &err));
  EXPECT_EQ(err.line, 2u);
  EXPECT_NE(err.message.find("out-of-order"), std::string::npos);
  EXPECT_TRUE(trace.records.empty());
}

TEST(MsrCsvParse, CrlfAndHeaderTolerated) {
  ParsedTrace trace;
  TraceError err;
  ASSERT_TRUE(ParseMsrCsv(
      "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\r\n"
      "128166372003061629,hm,1,write,4096,8192,100\r\n",
      &trace, &err))
      << err.Describe();
  ASSERT_EQ(trace.records.size(), 1u);
  EXPECT_EQ(trace.records[0].kind, TraceOpKind::kWrite);
}

TEST(MsrCsvParse, HeaderOnlyOnFirstLine) {
  ParsedTrace trace;
  TraceError err;
  EXPECT_FALSE(ParseMsrCsv(
      "128166372003061629,hm,1,Read,0,4096,100\n"
      "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n",
      &trace, &err));
  EXPECT_EQ(err.line, 2u);
}

// --- format autodetection -------------------------------------------------

TEST(DetectFormat, DistinguishesShapes) {
  EXPECT_EQ(DetectTraceFormat(ReadFile(DataPath("sample_blktrace.txt"))),
            TraceFormat::kBlktrace);
  EXPECT_EQ(DetectTraceFormat(ReadFile(DataPath("sample_msr.csv"))),
            TraceFormat::kMsrCsv);
  EXPECT_EQ(DetectTraceFormat("some random prose, with commas\n"),
            TraceFormat::kBlktrace);  // shape only; the parser rejects it
  EXPECT_EQ(DetectTraceFormat("no separators here\n"), TraceFormat::kAuto);
  EXPECT_EQ(DetectTraceFormat(""), TraceFormat::kAuto);
}

TEST(LoadTraceFile, MissingFileReportsPath) {
  ParsedTrace trace;
  TraceError err;
  EXPECT_FALSE(LoadTraceFile("/nonexistent/trace.txt", TraceFormat::kAuto,
                             &trace, &err));
  EXPECT_NE(err.message.find("/nonexistent/trace.txt"), std::string::npos);
}

// --- reconstruction -------------------------------------------------------

TEST(Reconstruct, MapsStreamsAndPreservesOrder) {
  ParsedTrace trace;
  TraceError err;
  ASSERT_TRUE(ParseBlktraceText(ReadFile(DataPath("sample_blktrace.txt")),
                                &trace, &err));
  ReconstructOptions opt;
  WorkloadProgram program;
  ReconstructStats stats;
  std::string error;
  ASSERT_TRUE(Reconstruct(trace, opt, &program, &stats, &error)) << error;
  EXPECT_EQ(stats.ops_out, program.ops.size());
  EXPECT_EQ(stats.records_in, trace.records.size());
  EXPECT_EQ(stats.streams, 4);  // 697/1423/1501 on 8,0 + postmark on 8,16
  EXPECT_GT(stats.reads, 0u);
  EXPECT_GT(stats.writes, 0u);
  EXPECT_EQ(stats.fsyncs, 3u);
  EXPECT_LE(program.num_procs, opt.max_procs);
  EXPECT_LE(program.num_files, opt.max_files);
  for (const StressOp& op : program.ops) {
    EXPECT_GE(op.proc, 0);
    EXPECT_LT(op.proc, program.num_procs);
    EXPECT_GE(op.file, 0);
    EXPECT_LT(op.file, program.num_files);
    EXPECT_LE(op.delay, opt.max_delay);
    if (op.kind != StressOpKind::kFsync) {
      EXPECT_LT(op.offset, opt.file_region_bytes);
      EXPECT_LE(op.offset + op.len, opt.file_region_bytes);
      EXPECT_LE(op.len, opt.max_io_bytes);
    }
  }
}

TEST(Reconstruct, IsDeterministic) {
  ParsedTrace trace;
  TraceError err;
  ASSERT_TRUE(
      ParseMsrCsv(ReadFile(DataPath("sample_msr.csv")), &trace, &err));
  WorkloadProgram a, b;
  std::string error;
  ASSERT_TRUE(Reconstruct(trace, {}, &a, nullptr, &error)) << error;
  ASSERT_TRUE(Reconstruct(trace, {}, &b, nullptr, &error)) << error;
  EXPECT_EQ(a, b);
  EXPECT_EQ(ProgramToJson(a), ProgramToJson(b));
}

TEST(Reconstruct, MaxOpsTruncates) {
  ParsedTrace trace;
  TraceError err;
  ASSERT_TRUE(
      ParseMsrCsv(ReadFile(DataPath("sample_msr.csv")), &trace, &err));
  ReconstructOptions opt;
  opt.max_ops = 7;
  WorkloadProgram program;
  std::string error;
  ASSERT_TRUE(Reconstruct(trace, opt, &program, nullptr, &error)) << error;
  EXPECT_EQ(program.ops.size(), 7u);
}

TEST(Reconstruct, RejectsEmptyTraceAndBadOptions) {
  WorkloadProgram program;
  std::string error;
  EXPECT_FALSE(Reconstruct(ParsedTrace(), {}, &program, nullptr, &error));
  ParsedTrace trace;
  trace.records.push_back(TraceRecord{});
  trace.records.back().len = 4096;
  ReconstructOptions opt;
  opt.max_procs = 0;
  EXPECT_FALSE(Reconstruct(trace, opt, &program, nullptr, &error));
}

// --- replay ---------------------------------------------------------------

TEST(Replay, RepeatProgramConcatenates) {
  WorkloadProgram p;
  p.num_procs = 2;
  p.num_files = 1;
  p.ops.resize(3);
  EXPECT_EQ(RepeatProgram(p, 1).ops.size(), 3u);
  WorkloadProgram r = RepeatProgram(p, 4);
  EXPECT_EQ(r.ops.size(), 12u);
  EXPECT_EQ(r.num_procs, 2);
}

// Same trace + same seed => byte-identical replay, across runs and across
// schedulers (the determinism contract). This is the library-level half of
// the determinism guarantee; the ctest round-trip covers the CLI half.
TEST(Replay, SameTraceSameSeedIsByteIdentical) {
  ParsedTrace trace;
  TraceError err;
  ASSERT_TRUE(ParseBlktraceText(ReadFile(DataPath("sample_blktrace.txt")),
                                &trace, &err));
  ReconstructOptions rec;
  ReplayOptions opt;
  opt.seed = 42;
  opt.repeat = 2;
  ReplayReport a, b;
  std::string error;
  ASSERT_TRUE(ReplayTrace(trace, rec, opt, &a, &error)) << error;
  ASSERT_TRUE(ReplayTrace(trace, rec, opt, &b, &error)) << error;
  ASSERT_EQ(a.per_sched.size(), std::size(kAllSchedKinds));
  ASSERT_EQ(b.per_sched.size(), a.per_sched.size());
  for (size_t i = 0; i < a.per_sched.size(); ++i) {
    EXPECT_TRUE(a.per_sched[i].all_ops_completed)
        << SchedName(a.per_sched[i].sched);
    EXPECT_EQ(a.per_sched[i].fingerprint, b.per_sched[i].fingerprint);
    EXPECT_EQ(a.per_sched[i].ops_done_at, b.per_sched[i].ops_done_at);
    EXPECT_EQ(a.per_sched[i].submitted, b.per_sched[i].submitted);
    // Content is schedule-independent: every scheduler agrees.
    EXPECT_EQ(a.per_sched[i].fingerprint, a.per_sched[0].fingerprint)
        << SchedName(a.per_sched[i].sched);
  }
}

// Tier-1 gate: both committed sample traces replay under all 8 schedulers
// with the full oracle battery (completion, conservation, spans, mq-equiv,
// and the cross-scheduler content differential) finding nothing.
TEST(Replay, CommittedSamplesPassAllOraclesUnderEveryScheduler) {
  for (const char* name : {"sample_blktrace.txt", "sample_msr.csv"}) {
    ParsedTrace trace;
    TraceError terr;
    ASSERT_TRUE(LoadTraceFile(DataPath(name), TraceFormat::kAuto, &trace,
                              &terr))
        << name << ": " << terr.Describe();
    WorkloadProgram program;
    std::string error;
    ASSERT_TRUE(Reconstruct(trace, {}, &program, nullptr, &error)) << error;
    for (SchedKind sched : kAllSchedKinds) {
      Scenario scenario;
      scenario.seed = 7;
      scenario.stack.sched = sched;
      scenario.program = program;
      auto failures = EvaluateScenario(scenario);
      EXPECT_TRUE(failures.empty())
          << name << " under " << SchedName(sched) << ": "
          << DescribeFailures(failures);
    }
  }
}

// --- trace -> repro bridge ------------------------------------------------

TEST(TraceRepro, CleanSliceRecordsCleanOracle) {
  ParsedTrace trace;
  TraceError terr;
  ASSERT_TRUE(LoadTraceFile(DataPath("sample_msr.csv"), TraceFormat::kAuto,
                            &trace, &terr));
  TraceReproOptions opt;
  StressFailure repro;
  std::string error;
  ASSERT_TRUE(TraceToRepro(trace, opt, &repro, &error)) << error;
  EXPECT_EQ(repro.oracle, "clean");
  EXPECT_FALSE(repro.scenario.program.ops.empty());
  // The repro JSON round-trips and replays as clean.
  StressFailure parsed;
  ASSERT_TRUE(ReproFromJson(ReproToJson(repro), &parsed));
  EXPECT_EQ(parsed.oracle, "clean");
  EXPECT_EQ(parsed.scenario, repro.scenario);
}

TEST(TraceRepro, NegativeControlRecordsRealOracleAndMinimizes) {
  ParsedTrace trace;
  TraceError terr;
  ASSERT_TRUE(LoadTraceFile(DataPath("sample_blktrace.txt"),
                            TraceFormat::kAuto, &trace, &terr));
  TraceReproOptions opt;
  opt.stack.control = NegativeControl::kDropCompletion;
  opt.oracle.run_content_differential = false;  // keep the test fast
  opt.oracle.run_mq_equivalence = false;
  opt.max_shrink_evals = 40;
  opt.reconstruct.max_ops = 24;
  StressFailure repro;
  std::string error;
  ASSERT_TRUE(TraceToRepro(trace, opt, &repro, &error)) << error;
  EXPECT_NE(repro.oracle, "clean");
  EXPECT_FALSE(repro.detail.empty());
  // Minimization kept the failure and did not grow the program.
  EXPECT_LE(repro.scenario.program.ops.size(), 24u);
  auto failures = EvaluateScenario(repro.scenario, opt.oracle);
  ASSERT_FALSE(failures.empty());
  EXPECT_EQ(failures.front().oracle, repro.oracle);
  EXPECT_EQ(failures.front().detail, repro.detail);
}

}  // namespace
}  // namespace ingest
}  // namespace splitio
