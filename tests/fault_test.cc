// Tests for the fault-injection subsystem: deterministic seed-driven
// decisions, and transient-EIO propagation from the device / block layer up
// to syscall return values without wedging writeback or dispatch.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/block/noop.h"
#include "src/core/storage_stack.h"
#include "src/fault/fault_injector.h"
#include "src/sched/split_deadline.h"
#include "src/sim/cpu.h"
#include "src/sim/simulator.h"

namespace splitio {
namespace {

FaultConfig NoisyConfig(uint64_t seed) {
  FaultConfig config;
  config.seed = seed;
  config.write_eio_rate = 0.3;
  config.read_eio_rate = 0.2;
  config.latency_spike_rate = 0.25;
  return config;
}

TEST(FaultInjector, DeterministicForSeed) {
  FaultInjector a(NoisyConfig(42));
  FaultInjector b(NoisyConfig(42));
  for (int i = 0; i < 256; ++i) {
    DeviceRequest req{static_cast<uint64_t>(i) * 8, kPageSize, (i % 3) != 0};
    DeviceFaultHook::Outcome oa = a.OnDeviceRequest(req);
    DeviceFaultHook::Outcome ob = b.OnDeviceRequest(req);
    EXPECT_EQ(oa.error, ob.error);
    EXPECT_EQ(oa.extra_latency, ob.extra_latency);
  }
  EXPECT_EQ(a.requests_seen(), 256u);
  EXPECT_GT(a.eios_injected(), 0u);
  EXPECT_GT(a.spikes_injected(), 0u);
  EXPECT_EQ(a.eios_injected(), b.eios_injected());
  EXPECT_EQ(a.spikes_injected(), b.spikes_injected());
}

TEST(FaultInjector, SeedChangesDecisions) {
  FaultInjector a(NoisyConfig(1));
  FaultInjector b(NoisyConfig(2));
  int diffs = 0;
  for (int i = 0; i < 256; ++i) {
    DeviceRequest req{static_cast<uint64_t>(i) * 8, kPageSize, true};
    DeviceFaultHook::Outcome oa = a.OnDeviceRequest(req);
    DeviceFaultHook::Outcome ob = b.OnDeviceRequest(req);
    diffs += (oa.error != ob.error || oa.extra_latency != ob.extra_latency);
  }
  EXPECT_GT(diffs, 0);
}

TEST(FaultInjector, DisabledInjectsNothing) {
  FaultInjector injector(NoisyConfig(42));
  injector.set_enabled(false);
  for (int i = 0; i < 64; ++i) {
    DeviceFaultHook::Outcome out = injector.OnDeviceRequest(
        {static_cast<uint64_t>(i) * 8, kPageSize, true});
    EXPECT_EQ(out.error, 0);
    EXPECT_EQ(out.extra_latency, 0);
  }
  EXPECT_EQ(injector.eios_injected(), 0u);
  EXPECT_EQ(injector.spikes_injected(), 0u);
}

// End-to-end scenario: with every device I/O failing, the cache write still
// succeeds, fsync surfaces the error, and — after the fault clears — the
// very same inode writes, syncs, and reads normally (nothing wedged).
Task<void> EioScenario(StorageStack& stack, FaultInjector& injector,
                       Process& proc, std::vector<int64_t>* results) {
  OsKernel& kernel = stack.kernel();
  int64_t ino = co_await kernel.Creat(proc, "/victim");
  results->push_back(co_await kernel.Write(proc, ino, 0, kPageSize));
  results->push_back(co_await kernel.Fsync(proc, ino));
  injector.set_enabled(false);
  results->push_back(co_await kernel.Write(proc, ino, kPageSize, kPageSize));
  results->push_back(co_await kernel.Fsync(proc, ino));
  // Evict the (clean) cached pages so reads must hit the (faulty) device;
  // holes and cache hits would complete without any I/O.
  injector.set_enabled(true);
  stack.cache().Free(ino, 0);
  stack.cache().Free(ino, 1);
  results->push_back(co_await kernel.Read(proc, ino, 0, kPageSize));
  injector.set_enabled(false);
  results->push_back(co_await kernel.Read(proc, ino, 0, kPageSize));
}

void RunEioScenario(std::unique_ptr<SplitScheduler> sched,
                    std::unique_ptr<Elevator> legacy, bool block_layer_hook) {
  Simulator sim;
  CpuModel cpu(4);
  StackConfig config;
  StorageStack stack(config, &cpu, std::move(sched), std::move(legacy));

  FaultConfig fault_config;
  fault_config.seed = 7;
  fault_config.write_eio_rate = 1.0;
  fault_config.read_eio_rate = 1.0;
  FaultInjector injector(fault_config);
  if (block_layer_hook) {
    stack.block().set_fault_hook(
        [&injector](const BlockRequest& req) {
          return injector.OnBlockRequest(req);
        });
  } else {
    stack.device().set_fault_hook(&injector);
  }

  stack.Start();
  Process* proc = stack.NewProcess("app");
  std::vector<int64_t> results;
  sim.Spawn(EioScenario(stack, injector, *proc, &results));
  sim.Run(Sec(30));

  ASSERT_EQ(results.size(), 6u);
  EXPECT_EQ(results[0], static_cast<int64_t>(kPageSize));  // cache write ok
  EXPECT_LT(results[1], 0);                                // fsync sees EIO
  EXPECT_EQ(results[2], static_cast<int64_t>(kPageSize));
  EXPECT_EQ(results[3], 0);                                // healed fsync ok
  EXPECT_LT(results[4], 0);                                // read EIO
  EXPECT_EQ(results[5], static_cast<int64_t>(kPageSize));  // healed read ok
}

TEST(FaultPropagation, DeviceEioSurfacesAndHealsSplitStack) {
  RunEioScenario(std::make_unique<SplitDeadlineScheduler>(SplitDeadlineConfig()),
                 nullptr, /*block_layer_hook=*/false);
}

TEST(FaultPropagation, DeviceEioSurfacesAndHealsLegacyStack) {
  RunEioScenario(nullptr, std::make_unique<NoopElevator>(),
                 /*block_layer_hook=*/false);
}

TEST(FaultPropagation, BlockLayerHookSurfacesAndHeals) {
  RunEioScenario(std::make_unique<SplitDeadlineScheduler>(SplitDeadlineConfig()),
                 nullptr, /*block_layer_hook=*/true);
}

}  // namespace
}  // namespace splitio
