// Policy-space equivalence (the refactor's load-bearing claim): for every
// canonical SchedKind, a ComposedScheduler interpreting the kind's
// PolicySpec — after a full JSON round-trip, so serialization is in the
// proof — produces a byte-identical execution to MakeSched(kind): same
// per-op results and latencies, same file contents, same block/device
// schedule fingerprint.
//
// Coverage: two handcrafted workloads shaped like the paper figures
// (fig05 fsync entanglement, fig09 mixed read/write) plus 50 generated
// stress scenarios spanning fs/device/mq/fault/crash axes.
#include <gtest/gtest.h>

#include <string>

#include "src/core/sched_factory.h"
#include "src/sched/policy.h"
#include "src/stress/executor.h"
#include "src/stress/scenario.h"

namespace splitio {
namespace {

// Full-result equality — every field ExecuteScenario computes, not just the
// content subset the stress content-differential oracle compares.
void ExpectIdentical(const ExecResult& a, const ExecResult& b,
                     const std::string& label) {
  EXPECT_EQ(a.all_ops_completed, b.all_ops_completed) << label;
  EXPECT_EQ(a.ops_done_at, b.ops_done_at) << label;
  EXPECT_EQ(a.op_results, b.op_results) << label;
  EXPECT_EQ(a.op_latency, b.op_latency) << label;
  EXPECT_EQ(a.file_sizes, b.file_sizes) << label;
  EXPECT_EQ(a.submitted, b.submitted) << label;
  EXPECT_EQ(a.completed, b.completed) << label;
  EXPECT_EQ(a.merged, b.merged) << label;
  EXPECT_EQ(a.device_bytes_read, b.device_bytes_read) << label;
  EXPECT_EQ(a.device_bytes_written, b.device_bytes_written) << label;
  EXPECT_EQ(a.device_busy, b.device_busy) << label;
  EXPECT_EQ(a.device_flushes, b.device_flushes) << label;
  EXPECT_EQ(a.inflight_at_end, b.inflight_at_end) << label;
  EXPECT_EQ(a.elevator_empty, b.elevator_empty) << label;
  EXPECT_EQ(a.pages_dirtied, b.pages_dirtied) << label;
  EXPECT_EQ(a.wb_pages_flushed, b.wb_pages_flushed) << label;
  EXPECT_EQ(a.faults_injected, b.faults_injected) << label;
  EXPECT_EQ(a.crash_points, b.crash_points) << label;
}

// Runs `scenario` once through MakeSched(kind) and once through a
// ComposedScheduler built from the kind's spec after ToJson -> FromJson,
// and asserts byte-identical results.
void CheckKindEquivalence(Scenario scenario, SchedKind kind,
                          const std::string& label) {
  scenario.stack.sched = kind;
  scenario.stack.use_spec = false;
  scenario.stack.spec = PolicySpec();

  Scenario composed = scenario;
  composed.stack.use_spec = true;
  std::string json = PolicySpecToJson(SpecForKind(kind));
  jsonmini::ParseError err;
  ASSERT_TRUE(PolicySpecFromJson(json, &composed.stack.spec, &err))
      << label << ": " << err.Describe();
  ASSERT_EQ(composed.stack.spec, SpecForKind(kind)) << label;

  ExecOptions opts;
  opts.trace = false;
  opts.crash_points = 2;
  ExecResult direct = ExecuteScenario(scenario, opts);
  ExecResult via_spec = ExecuteScenario(composed, opts);
  ExpectIdentical(direct, via_spec,
                  label + "/" + SchedName(kind));
}

// Fig05-shaped program: a small transactional writer (4 KB append + fsync
// per round) sharing the stack with a bulk buffered writer — journal
// entanglement puts every layer's ordering decisions on the line.
Scenario Fig05Scenario() {
  Scenario s;
  s.seed = 5;
  s.program.num_procs = 2;
  s.program.num_files = 2;
  s.program.priorities = {1, 7};
  for (int round = 0; round < 8; ++round) {
    StressOp w;
    w.kind = StressOpKind::kWrite;
    w.proc = 0;
    w.file = 0;
    w.offset = static_cast<uint64_t>(round) * 4096;
    w.len = 4096;
    s.program.ops.push_back(w);
    StressOp f;
    f.kind = StressOpKind::kFsync;
    f.proc = 0;
    f.file = 0;
    s.program.ops.push_back(f);
  }
  for (int i = 0; i < 6; ++i) {
    StressOp b;
    b.kind = StressOpKind::kWrite;
    b.proc = 1;
    b.file = 1;
    b.offset = static_cast<uint64_t>(i) * (256 << 10);
    b.len = 256 << 10;
    b.delay = Msec(2);
    s.program.ops.push_back(b);
  }
  return s;
}

// Fig09-shaped program: mixed readers and writers across three processes,
// exercising read queues, anticipation, and write batching together.
Scenario Fig09Scenario() {
  Scenario s;
  s.seed = 9;
  s.program.num_procs = 3;
  s.program.num_files = 3;
  s.program.priorities = {2, 4, 6};
  for (int i = 0; i < 10; ++i) {
    StressOp w;
    w.kind = StressOpKind::kWrite;
    w.proc = 0;
    w.file = 0;
    w.offset = static_cast<uint64_t>(i) * 65536;
    w.len = 65536;
    s.program.ops.push_back(w);
    StressOp r;
    r.kind = StressOpKind::kRead;
    r.proc = 1;
    r.file = 0;
    r.offset = static_cast<uint64_t>((i * 7) % 16) * 4096;
    r.len = 4096;
    r.delay = Msec(1);
    s.program.ops.push_back(r);
  }
  for (int i = 0; i < 4; ++i) {
    StressOp w;
    w.kind = StressOpKind::kWrite;
    w.proc = 2;
    w.file = 2;
    w.offset = static_cast<uint64_t>(i) * 16384;
    w.len = 16384;
    s.program.ops.push_back(w);
    StressOp f;
    f.kind = StressOpKind::kFsync;
    f.proc = 2;
    f.file = 2;
    f.delay = Msec(3);
    s.program.ops.push_back(f);
  }
  return s;
}

class PolicyEquivalence : public ::testing::TestWithParam<SchedKind> {};

TEST_P(PolicyEquivalence, Fig05Workload) {
  CheckKindEquivalence(Fig05Scenario(), GetParam(), "fig05");
}

TEST_P(PolicyEquivalence, Fig09Workload) {
  CheckKindEquivalence(Fig09Scenario(), GetParam(), "fig09");
}

TEST_P(PolicyEquivalence, FiftyStressSeeds) {
  GenOptions gen;
  gen.allow_random_spec = false;  // the kind axis is forced below
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    CheckKindEquivalence(GenerateScenario(seed, gen), GetParam(),
                         "stress-seed" + std::to_string(seed));
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, PolicyEquivalence,
                         ::testing::ValuesIn(kAllSchedKinds),
                         [](const ::testing::TestParamInfo<SchedKind>& info) {
                           std::string name = SchedName(info.param);
                           for (char& ch : name) {
                             if (ch == '-') {
                               ch = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace splitio
