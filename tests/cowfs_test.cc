// Tests for the copy-on-write file system model (btrfs-like): out-of-place
// writes, checkpoint batching, garbage collection, and GC proxy tagging.
#include <gtest/gtest.h>

#include <memory>

#include "src/block/noop.h"
#include "src/cache/page_cache.h"
#include "src/fs/cowfs.h"
#include "src/sim/cpu.h"
#include "src/sim/simulator.h"
#include "src/syscall/kernel.h"

namespace splitio {
namespace {

// CowFsSim is not wired into StorageStack's fs enum (it is an extension),
// so assemble the pieces directly.
struct CowHarness {
  explicit CowHarness(const CowConfig& cow = CowConfig()) {
    device = std::make_unique<HddModel>();
    elevator = std::make_unique<NoopElevator>();
    block = std::make_unique<BlockLayer>(device.get(), elevator.get());
    cache = std::make_unique<PageCache>();
    wb = std::make_unique<Process>(9001, "writeback");
    ckpt = std::make_unique<Process>(9002, "cow-checkpoint");
    gc = std::make_unique<Process>(9003, "cow-gc");
    fs = std::make_unique<CowFsSim>(cache.get(), block.get(), wb.get(),
                                    ckpt.get(), gc.get(), FsBase::Layout(),
                                    cow);
    cpu = std::make_unique<CpuModel>(8);
    kernel = std::make_unique<OsKernel>(fs.get(), cache.get(), cpu.get(),
                                        nullptr, OsKernel::Config());
    block->Start();
    fs->Mount();
    fs->StartWriteback();
  }
  std::unique_ptr<HddModel> device;
  std::unique_ptr<NoopElevator> elevator;
  std::unique_ptr<BlockLayer> block;
  std::unique_ptr<PageCache> cache;
  std::unique_ptr<Process> wb, ckpt, gc;
  std::unique_ptr<CowFsSim> fs;
  std::unique_ptr<CpuModel> cpu;
  std::unique_ptr<OsKernel> kernel;
};

TEST(CowFs, WriteFsyncReadCycle) {
  Simulator sim;
  CowHarness h;
  Process app(1, "app");
  bool done = false;
  auto body = [&]() -> Task<void> {
    int64_t ino = co_await h.kernel->Creat(app, "/f");
    co_await h.kernel->Write(app, ino, 0, 64 * kPageSize);
    co_await h.kernel->Fsync(app, ino);
    EXPECT_EQ(h.cache->dirty_pages_of(ino), 0u);
    uint64_t n = co_await h.kernel->Read(app, ino, 0, 64 * kPageSize);
    EXPECT_EQ(n, 64u * kPageSize);
    done = true;
  };
  sim.Spawn(body());
  sim.Run(Sec(30));
  EXPECT_TRUE(done);
  EXPECT_GE(h.fs->checkpoints(), 1u);
}

TEST(CowFs, RandomOverwritesBecomeSequentialOnDisk) {
  Simulator sim;
  CowHarness h;
  Process app(1, "app");
  std::vector<uint64_t> write_sectors;
  h.block->set_completion_hook([&](const BlockRequest& req) {
    if (req.is_write && !req.is_journal) {
      write_sectors.push_back(req.sector);
    }
  });
  auto body = [&]() -> Task<void> {
    int64_t ino = co_await h.kernel->Creat(app, "/f");
    co_await h.kernel->Write(app, ino, 0, 256 * kPageSize);
    co_await h.kernel->Fsync(app, ino);
    // Random-order overwrites of scattered pages...
    for (uint64_t idx : {200ULL, 3ULL, 77ULL, 150ULL, 9ULL, 42ULL}) {
      co_await h.kernel->Write(app, ino, idx * kPageSize, kPageSize);
    }
    write_sectors.clear();
    co_await h.kernel->Fsync(app, ino);
  };
  sim.Spawn(body());
  sim.Run(Sec(30));
  // ...reach disk as one (or few) sequential log-head writes.
  ASSERT_FALSE(write_sectors.empty());
  EXPECT_LE(write_sectors.size(), 2u);
}

TEST(CowFs, OverwriteLeavesOldLocationDeadAndRemaps) {
  Simulator sim;
  CowHarness h;
  Process app(1, "app");
  auto body = [&]() -> Task<void> {
    int64_t ino = co_await h.kernel->Creat(app, "/f");
    co_await h.kernel->Write(app, ino, 0, kPageSize);
    co_await h.kernel->Fsync(app, ino);
    uint64_t segs_before = h.fs->live_segments();
    co_await h.kernel->Write(app, ino, 0, kPageSize);  // overwrite page 0
    co_await h.kernel->Fsync(app, ino);
    // Still at most the same segment count; the data moved, it didn't grow.
    EXPECT_LE(h.fs->live_segments(), segs_before + 1);
  };
  sim.Spawn(body());
  sim.Run(Sec(30));
}

TEST(CowFs, CheckpointBatchesAllPendingMetadata) {
  Simulator sim;
  CowHarness h;
  Process a(1, "A");
  Process b(2, "B");
  std::vector<CauseSet> checkpoint_causes;
  h.block->set_completion_hook([&](const BlockRequest& req) {
    if (req.is_journal) {
      checkpoint_causes.push_back(req.causes);
    }
  });
  auto body = [&]() -> Task<void> {
    int64_t ia = co_await h.kernel->Creat(a, "/a");
    int64_t ib = co_await h.kernel->Creat(b, "/b");
    co_await h.kernel->Write(a, ia, 0, kPageSize);
    co_await h.kernel->Write(b, ib, 0, kPageSize);
    // A's fsync checkpoints; the tree write carries B's pending updates
    // too, and both causes.
    co_await h.kernel->Fsync(a, ia);
  };
  sim.Spawn(body());
  sim.Run(Sec(10));
  ASSERT_FALSE(checkpoint_causes.empty());
  EXPECT_TRUE(checkpoint_causes[0].Contains(a.pid()));
  EXPECT_TRUE(checkpoint_causes[0].Contains(b.pid()));
}

TEST(CowFs, GarbageCollectionReclaimsDeadSegments) {
  Simulator sim;
  CowConfig cow;
  cow.total_segments = 16;     // tiny log so GC triggers quickly
  cow.segment_pages = 64;      // 256 KB segments
  cow.gc_threshold = 0.5;
  CowHarness h(cow);
  Process app(1, "app");
  auto body = [&]() -> Task<void> {
    int64_t ino = co_await h.kernel->Creat(app, "/f");
    // A sliding overwrite window: most of each round's data dies later,
    // but each segment keeps a few live pages — so the collector must
    // migrate, not just reclaim.
    for (uint64_t round = 0; round < 40; ++round) {
      co_await h.kernel->Write(app, ino, round * 4 * kPageSize,
                               32 * kPageSize);
      co_await h.kernel->Fsync(app, ino);
    }
  };
  sim.Spawn(body());
  sim.Run(Sec(60));
  EXPECT_GT(h.fs->gc_runs(), 0u);
  // Despite 40 x 32 pages of writes in a 16x64-page log, space was
  // reclaimed: utilization stayed below 100%.
  EXPECT_LT(h.fs->log_utilization(), 1.0);
}

TEST(CowFs, GcProxyTaggingAttributesMigrationToOwners) {
  auto run = [](bool tag_gc) {
    Simulator sim;
    CowConfig cow;
    cow.total_segments = 16;
    cow.segment_pages = 64;
    cow.gc_threshold = 0.5;
    cow.tag_gc_proxy = tag_gc;
    CowHarness h(cow);
    Process app(1, "app");
    bool gc_attributed_to_app = false;
    bool gc_io_seen = false;
    h.block->set_completion_hook([&](const BlockRequest& req) {
      if (req.submitter != nullptr && req.submitter->pid() == 9003) {
        gc_io_seen = true;
        if (req.causes.Contains(1)) {
          gc_attributed_to_app = true;
        }
      }
    });
    auto body = [&]() -> Task<void> {
      int64_t ino = co_await h.kernel->Creat(app, "/f");
      for (uint64_t round = 0; round < 40; ++round) {
        co_await h.kernel->Write(app, ino, round * 4 * kPageSize,
                                 32 * kPageSize);
        co_await h.kernel->Fsync(app, ino);
      }
    };
    sim.Spawn(body());
    sim.Run(Sec(60));
    return std::make_pair(gc_io_seen, gc_attributed_to_app);
  };
  auto [seen_tagged, attributed_tagged] = run(true);
  EXPECT_TRUE(seen_tagged);
  EXPECT_TRUE(attributed_tagged);  // full integration: GC billed to the app
  auto [seen_untagged, attributed_untagged] = run(false);
  EXPECT_TRUE(seen_untagged);
  EXPECT_FALSE(attributed_untagged);  // partial: GC I/O escapes accounting
}

}  // namespace
}  // namespace splitio
