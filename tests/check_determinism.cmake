# Determinism regression check: runs one bench binary twice with the same
# --seed and requires byte-identical output — tables and the BENCHJSON line
# alike. Any hidden nondeterminism (iteration order, uninitialized state,
# wall-clock leakage) shows up as a diff here long before it corrupts a
# figure. Invoked by ctest; pass -DBENCH=<path-to-binary>.
if(NOT DEFINED BENCH)
  message(FATAL_ERROR "pass -DBENCH=<path to a bench binary>")
endif()

# detect_leaks=0: benches stop at a time horizon with workload coroutines
# still suspended, so their frames are (intentionally) alive at exit —
# LeakSanitizer would flag them in the SPLITIO_SANITIZE build. ASan/UBSan
# error checking itself stays active.
# Optional -DEXTRA_ENV=NAME=VALUE adds one more environment variable to
# both runs (e.g. SPLITIO_MT_TENANTS=150 to size the multi-tenant sweep).
set(extra_env "")
if(DEFINED EXTRA_ENV)
  set(extra_env ${EXTRA_ENV})
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E env ASAN_OPTIONS=detect_leaks=0
                ${extra_env} ${BENCH} --seed 123
                OUTPUT_VARIABLE out1 RESULT_VARIABLE rc1)
execute_process(COMMAND ${CMAKE_COMMAND} -E env ASAN_OPTIONS=detect_leaks=0
                ${extra_env} ${BENCH} --seed 123
                OUTPUT_VARIABLE out2 RESULT_VARIABLE rc2)
if(NOT rc1 EQUAL 0 OR NOT rc2 EQUAL 0)
  message(FATAL_ERROR "bench exited nonzero: ${rc1} / ${rc2}")
endif()

string(REGEX MATCH "BENCHJSON [^\n]*" json1 "${out1}")
if(json1 STREQUAL "")
  message(FATAL_ERROR "no BENCHJSON line in bench output")
endif()
string(FIND "${json1}" "\"seed\":123" seed_pos)
if(seed_pos EQUAL -1)
  message(FATAL_ERROR "--seed 123 not echoed in BENCHJSON: ${json1}")
endif()

if(NOT out1 STREQUAL out2)
  message(FATAL_ERROR "output differs between identical-seed runs")
endif()
message(STATUS "deterministic: identical output across two --seed 123 runs")
