// Cross-module integration and property tests: full stacks exercised
// end-to-end, invariants checked over parameter sweeps.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "src/block/block_deadline.h"
#include "src/block/cfq.h"
#include "src/block/noop.h"
#include "src/core/storage_stack.h"
#include "src/sched/afq.h"
#include "src/sched/scs_token.h"
#include "src/sched/split_deadline.h"
#include "src/sched/split_noop.h"
#include "src/sched/split_token.h"
#include "src/sim/simulator.h"
#include "src/workload/workloads.h"

namespace splitio {
namespace {

enum class Sched {
  kNoop,
  kCfq,
  kBlockDeadline,
  kSplitNoop,
  kAfq,
  kSplitDeadline,
  kSplitToken,
  kScsToken
};

struct FullStack {
  FullStack(Sched sched, StackConfig::FsKind fs,
            StackConfig::DeviceKind device) {
    StackConfig config;
    config.fs = fs;
    config.device = device;
    cpu = std::make_unique<CpuModel>(8);
    std::unique_ptr<SplitScheduler> split;
    std::unique_ptr<Elevator> legacy;
    switch (sched) {
      case Sched::kNoop:
        legacy = std::make_unique<NoopElevator>();
        break;
      case Sched::kCfq:
        legacy = std::make_unique<CfqElevator>();
        break;
      case Sched::kBlockDeadline:
        legacy = std::make_unique<BlockDeadlineElevator>();
        break;
      case Sched::kSplitNoop:
        split = std::make_unique<SplitNoopScheduler>();
        break;
      case Sched::kAfq:
        split = std::make_unique<AfqScheduler>();
        break;
      case Sched::kSplitDeadline:
        split = std::make_unique<SplitDeadlineScheduler>();
        break;
      case Sched::kSplitToken:
        split = std::make_unique<SplitTokenScheduler>();
        break;
      case Sched::kScsToken:
        split = std::make_unique<ScsTokenScheduler>();
        break;
    }
    stack = std::make_unique<StorageStack>(config, cpu.get(),
                                           std::move(split),
                                           std::move(legacy));
    stack->Start();
  }
  std::unique_ptr<CpuModel> cpu;
  std::unique_ptr<StorageStack> stack;
};

// Every (scheduler, fs, device) combination must complete a basic
// write-fsync-read cycle with correct durability accounting: after fsync,
// no dirty pages remain and the device received at least the data.
class StackMatrix
    : public ::testing::TestWithParam<
          std::tuple<Sched, StackConfig::FsKind, StackConfig::DeviceKind>> {};

TEST_P(StackMatrix, WriteFsyncReadCycleCompletes) {
  auto [sched, fs, device] = GetParam();
  Simulator sim;
  FullStack h(sched, fs, device);
  Process* p = h.stack->NewProcess("app");
  bool completed = false;
  auto body = [&]() -> Task<void> {
    int64_t ino = co_await h.stack->kernel().Creat(*p, "/f");
    co_await h.stack->kernel().Write(*p, ino, 0, 256 * kPageSize);
    co_await h.stack->kernel().Fsync(*p, ino);
    EXPECT_EQ(h.stack->cache().dirty_pages_of(ino), 0u);
    uint64_t n = co_await h.stack->kernel().Read(*p, ino, 0, 256 * kPageSize);
    EXPECT_EQ(n, 256u * kPageSize);
    completed = true;
  };
  sim.Spawn(body());
  sim.Run(Sec(60));
  EXPECT_TRUE(completed);
  EXPECT_GE(h.stack->device().total_bytes_written(), 256u * kPageSize);
}

INSTANTIATE_TEST_SUITE_P(
    AllStacks, StackMatrix,
    ::testing::Combine(
        ::testing::Values(Sched::kNoop, Sched::kCfq, Sched::kBlockDeadline,
                          Sched::kSplitNoop, Sched::kAfq,
                          Sched::kSplitDeadline, Sched::kSplitToken,
                          Sched::kScsToken),
        ::testing::Values(StackConfig::FsKind::kExt4,
                          StackConfig::FsKind::kXfs),
        ::testing::Values(StackConfig::DeviceKind::kHdd,
                          StackConfig::DeviceKind::kSsd)));

// Determinism: the same seed and configuration must produce bit-identical
// results across runs.
class DeterminismSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeterminismSweep, IdenticalAcrossRuns) {
  auto run = [&]() {
    Simulator sim;
    FullStack h(Sched::kSplitToken, StackConfig::FsKind::kExt4,
                StackConfig::DeviceKind::kHdd);
    Process* p = h.stack->NewProcess("app");
    WorkloadStats stats;
    auto body = [&]() -> Task<void> {
      int64_t ino = co_await h.stack->kernel().Creat(*p, "/f");
      co_await RandomWriter(h.stack->kernel(), *p, ino, 64 << 20, 4096,
                            GetParam(), Sec(5), &stats);
      co_await h.stack->kernel().Fsync(*p, ino);
    };
    sim.Spawn(body());
    sim.Run(Sec(10));
    return std::make_tuple(stats.bytes, stats.ops,
                           h.stack->device().total_bytes_written(),
                           h.stack->device().busy_time());
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismSweep,
                         ::testing::Values(1, 7, 42, 1234));

// Conservation: bytes dirtied = bytes written back + bytes still dirty +
// bytes freed, across a mixed workload.
TEST(Conservation, DirtyPagesAreNeverLost) {
  Simulator sim;
  FullStack h(Sched::kSplitNoop, StackConfig::FsKind::kExt4,
              StackConfig::DeviceKind::kHdd);
  Process* p = h.stack->NewProcess("app");
  auto body = [&]() -> Task<void> {
    int64_t a = co_await h.stack->kernel().Creat(*p, "/a");
    int64_t b = co_await h.stack->kernel().Creat(*p, "/b");
    co_await h.stack->kernel().Write(*p, a, 0, 64 * kPageSize);
    co_await h.stack->kernel().Write(*p, b, 0, 32 * kPageSize);
    co_await h.stack->kernel().Fsync(*p, a);
    co_await h.stack->kernel().Unlink(*p, b);  // b's dirty pages freed
  };
  sim.Spawn(body());
  sim.Run(Sec(30));
  // a's 64 pages must be durable; b's 32 pages must have produced no data
  // writes (journal/checkpoint writes are metadata).
  EXPECT_EQ(h.stack->cache().dirty_pages(), 0u);
  EXPECT_GE(h.stack->device().total_bytes_written(), 64u * kPageSize);
}

// The split framework never reorders journal writes relative to each other
// (commit records are ordering-critical).
TEST(JournalOrdering, CommitsReachDeviceInOrder) {
  Simulator sim;
  FullStack h(Sched::kSplitDeadline, StackConfig::FsKind::kExt4,
              StackConfig::DeviceKind::kHdd);
  Process* p = h.stack->NewProcess("app");
  std::vector<uint64_t> journal_sectors;
  h.stack->block().set_completion_hook([&](const BlockRequest& req) {
    if (req.is_journal) {
      journal_sectors.push_back(req.sector);
    }
  });
  auto body = [&]() -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      int64_t ino = co_await h.stack->kernel().Creat(
          *p, "/f" + std::to_string(i));
      co_await h.stack->kernel().Write(*p, ino, 0, kPageSize);
      co_await h.stack->kernel().Fsync(*p, ino);
    }
  };
  sim.Spawn(body());
  sim.Run(Sec(30));
  ASSERT_GE(journal_sectors.size(), 2u);
  for (size_t i = 1; i < journal_sectors.size(); ++i) {
    EXPECT_GT(journal_sectors[i], journal_sectors[i - 1])
        << "journal writes must stay sequential/ordered";
  }
}

// Split-Token rate sweep: achieved throughput of a throttled sequential
// writer tracks the configured rate across two orders of magnitude.
class RateSweep : public ::testing::TestWithParam<double> {};

TEST_P(RateSweep, ThroughputTracksConfiguredRate) {
  double rate_mbps = GetParam();
  Simulator sim;
  StackConfig config;
  CpuModel cpu(8);
  auto sched = std::make_unique<SplitTokenScheduler>();
  sched->SetAccountLimit(1, rate_mbps * 1024 * 1024);
  StorageStack stack(config, &cpu, std::move(sched), nullptr);
  stack.Start();
  Process* p = stack.NewProcess("b");
  p->set_account(1);
  WorkloadStats stats;
  auto body = [&]() -> Task<void> {
    int64_t ino = co_await stack.kernel().Creat(*p, "/f");
    co_await SequentialWriter(stack.kernel(), *p, ino, 1 << 20, Sec(30),
                              &stats);
  };
  sim.Spawn(body());
  sim.Run(Sec(30));
  double achieved = stats.MBps(0, Sec(30));
  EXPECT_GT(achieved, 0.5 * rate_mbps);
  EXPECT_LT(achieved, 1.8 * rate_mbps);
}

INSTANTIATE_TEST_SUITE_P(Rates, RateSweep,
                         ::testing::Values(1.0, 4.0, 16.0, 64.0));

}  // namespace
}  // namespace splitio
