// Tests for the telemetry plane (src/obs/metrics): passive grid sampling
// driven by the simulator clock, ring retention, the burn-rate windows, the
// exporters, and the two contracts the subsystem is built around — metrics
// never perturb the simulated schedule, and the record path is
// allocation-free after registration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/block/noop.h"
#include "src/core/storage_stack.h"
#include "src/metrics/counters.h"
#include "src/obs/metrics.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/tenant/slo.h"

namespace splitio {
namespace {

TEST(RingSeries, WrapKeepsLifetimeStatsAndNewestPoints) {
  obs::RingSeries ring;
  ring.Reset(4);
  for (int i = 1; i <= 10; ++i) {
    ring.Push(Msec(i), static_cast<double>(i));
  }
  EXPECT_EQ(ring.count(), 10u);     // lifetime, unaffected by the wrap
  EXPECT_EQ(ring.retained(), 4u);   // only the newest capacity points kept
  EXPECT_DOUBLE_EQ(ring.peak(), 10.0);
  EXPECT_DOUBLE_EQ(ring.last(), 10.0);
  EXPECT_DOUBLE_EQ(ring.avg(), 5.5);  // mean of 1..10, not of the tail
  for (size_t i = 0; i < 4; ++i) {    // oldest retained first: 7, 8, 9, 10
    EXPECT_EQ(ring.At(i).t, Msec(7 + static_cast<int>(i)));
    EXPECT_DOUBLE_EQ(ring.At(i).v, 7.0 + static_cast<double>(i));
  }
}

// The hub samples every gauge on the period grid as the simulator clock
// advances. Gauge values are piecewise-constant between events, so the
// sample at boundary B must reflect every event with time <= B: a value
// set at 250 ms is invisible at the 200 ms sample and visible at 300 ms.
TEST(MetricsHub, SamplesGaugesOnTheSimulatedTimeGrid) {
  obs::MetricsHub hub;
  obs::ScopedMetricsHub scope(&hub);
  Simulator sim;  // resets the grid via SampleHook::OnSimulatorStart
  int depth = 0;
  hub.AddGauge(&depth, "depth", "reqs",
               [&depth](Nanos) { return static_cast<double>(depth); });
  auto body = [&]() -> Task<void> {
    co_await Delay(Msec(250));
    depth = 5;
    co_await Delay(Msec(750));
    depth = 2;
  };
  sim.Spawn(body());
  sim.Run(Sec(1));

  ASSERT_EQ(hub.series().size(), 1u);
  const obs::MetricsHub::Series& s = hub.series().front();
  EXPECT_EQ(s.name, "depth");
  EXPECT_EQ(s.period, Msec(100));
  ASSERT_EQ(s.ring.count(), 10u);  // samples at 100 ms .. 1000 ms
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(s.ring.At(i).t, Msec(100) * static_cast<Nanos>(i + 1));
  }
  EXPECT_DOUBLE_EQ(s.ring.At(0).v, 0.0);  // 100 ms: before the first event
  EXPECT_DOUBLE_EQ(s.ring.At(1).v, 0.0);  // 200 ms
  for (size_t i = 2; i < 9; ++i) {        // 300 .. 900 ms
    EXPECT_DOUBLE_EQ(s.ring.At(i).v, 5.0);
  }
  // 1000 ms: the event at exactly 1000 ms lands before the boundary sample
  // (quiescent exit flushes the grid through now).
  EXPECT_DOUBLE_EQ(s.ring.At(9).v, 2.0);
  EXPECT_DOUBLE_EQ(s.ring.peak(), 5.0);
}

TEST(MetricsHub, RemoveOwnerStopsSamplingButKeepsData) {
  obs::MetricsHub hub;
  int v = 7;
  hub.AddGauge(&v, "g", "u", [&v](Nanos) { return static_cast<double>(v); });
  hub.OnSimulatorStart();
  hub.AdvanceTo(Msec(350));  // boundaries 100, 200, 300
  ASSERT_EQ(hub.series().front().ring.count(), 3u);
  hub.RemoveOwner(&v);
  hub.AdvanceTo(Msec(650));  // the gauge is dead: no further samples
  const obs::MetricsHub::Series& s = hub.series().front();
  EXPECT_EQ(s.ring.count(), 3u);
  EXPECT_FALSE(s.live);
  EXPECT_DOUBLE_EQ(s.ring.last(), 7.0);  // recorded data survives removal
}

TEST(MetricsHub, SampledSeriesLandsOnWindowEnds) {
  obs::MetricsHub hub;
  hub.AddSampledSeries("burn", "frac", Sec(1), {0.0, 0.25, 1.0});
  ASSERT_EQ(hub.series().size(), 1u);
  const obs::MetricsHub::Series& s = hub.series().front();
  EXPECT_FALSE(s.live);  // bulk-loaded, never sampled
  ASSERT_EQ(s.ring.count(), 3u);
  EXPECT_EQ(s.ring.At(0).t, Sec(1));  // value of the window ending at 1 s
  EXPECT_EQ(s.ring.At(2).t, Sec(3));
  EXPECT_DOUBLE_EQ(s.ring.peak(), 1.0);
}

TEST(MetricsHub, ExportersEmitMetaSeriesHistAndAlertLines) {
  obs::MetricsHub hub;
  int v = 3;
  hub.AddGauge(&v, "depth", "reqs",
               [&v](Nanos) { return static_cast<double>(v); });
  hub.OnSimulatorStart();
  hub.AdvanceTo(Msec(250));  // two samples
  obs::LogHistogram* h = hub.AddHistogram("lat");
  h->Record(Msec(3));
  obs::MetricsHub::AlertSummary a;
  a.name = "burn_gold";
  a.window = Sec(1);
  a.target = Msec(20);
  a.budget = 0.001;
  a.windows = 10;
  a.alert_windows = 2;
  a.first_alert = Sec(3);
  a.worst_fraction = 0.5;
  a.worst_window_start = Sec(4);
  hub.AddAlertSummary(a);

  std::ostringstream out;
  hub.WriteJsonl(out);
  std::string jsonl = out.str();
  // One object per line: meta + 1 series + 1 hist + 1 alerts.
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 4);
  EXPECT_NE(jsonl.find("\"type\":\"meta\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"depth\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"samples\":2"), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"hist\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"lat\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"count\":1"), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"alerts\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"alert_windows\":2"), std::string::npos);
  EXPECT_NE(jsonl.find("\"first_alert_ns\":3000000000"), std::string::npos);

  std::ostringstream csv;
  hub.WriteCsv(csv);
  EXPECT_NE(csv.str().find("label,name,unit,t_ns,value"), std::string::npos);

  auto summary = hub.Summary();
  auto find = [&](const std::string& name) -> double {
    for (const auto& [key, value] : summary) {
      if (key == name) {
        return value;
      }
    }
    ADD_FAILURE() << "missing summary metric " << name;
    return -1;
  };
  EXPECT_DOUBLE_EQ(find("timeline_series"), 1.0);
  EXPECT_DOUBLE_EQ(find("timeline_points"), 2.0);
  EXPECT_DOUBLE_EQ(find("timeline_histograms"), 1.0);
  EXPECT_DOUBLE_EQ(find("timeline_alert_windows"), 2.0);
  EXPECT_DOUBLE_EQ(find("tl_peak_depth"), 3.0);
}

// ---------------------------------------------------------------------------
// BurnRateTracker: windowed SLO burn-rate evaluation (src/tenant/slo.h).
// ---------------------------------------------------------------------------

BurnRateTracker::Config BurnConfig() {
  BurnRateTracker::Config cfg;
  cfg.window = Sec(1);
  cfg.target = Msec(10);
  cfg.budget = 0.001;       // 99.9% SLO
  cfg.alert_factor = 50.0;  // alert when a window burns > 5% of its ops
  cfg.min_violations = 2;
  cfg.horizon = Sec(5);
  return cfg;
}

TEST(BurnRateTracker, WindowsAlertOnBudgetBurn) {
  BurnRateTracker burn;
  burn.Configure(BurnConfig());
  ASSERT_EQ(burn.window_count(), 5u);

  // Window 0: 100 ops, 1 violation — 1% burn, and below min_violations.
  for (int i = 0; i < 99; ++i) {
    burn.Record(Msec(500), Msec(1));
  }
  burn.Record(Msec(500), Msec(20));
  // Window 1: 100 ops, 10 violations — 10% burn, alerts. An op completing
  // exactly on the boundary belongs to the window it completes in.
  for (int i = 0; i < 90; ++i) {
    burn.Record(Sec(1), Msec(1));
  }
  for (int i = 0; i < 10; ++i) {
    burn.Record(Sec(1) + Msec(500), Msec(20));
  }
  // Window 2: 10 ops, 1 violation — 10% burn but under min_violations: a
  // single straggler in a thin window is not an alert.
  for (int i = 0; i < 9; ++i) {
    burn.Record(Sec(2) + Msec(100), Msec(1));
  }
  burn.Record(Sec(2) + Msec(100), Msec(20));
  // Window 3 stays empty. Drain-phase completions (past the horizon) clamp
  // into the last window.
  burn.Record(Sec(7), Msec(1));

  BurnRateTracker::Report r = burn.Evaluate();
  EXPECT_EQ(r.windows_with_ops, 4u);
  EXPECT_EQ(r.alert_windows, 1u);
  EXPECT_EQ(r.first_alert, Sec(1));
  EXPECT_DOUBLE_EQ(r.worst_fraction, 0.1);
  EXPECT_EQ(r.worst_window_start, Sec(1));

  std::vector<double> fractions = burn.WindowFractions();
  ASSERT_EQ(fractions.size(), 5u);
  EXPECT_DOUBLE_EQ(fractions[0], 0.01);
  EXPECT_DOUBLE_EQ(fractions[1], 0.1);
  EXPECT_DOUBLE_EQ(fractions[2], 0.1);
  EXPECT_DOUBLE_EQ(fractions[3], 0.0);  // empty window reports 0
  EXPECT_DOUBLE_EQ(fractions[4], 0.0);  // the drain op was within target
}

TEST(BurnRateTracker, ZeroTargetNeverCountsViolations) {
  BurnRateTracker burn;
  BurnRateTracker::Config cfg = BurnConfig();
  cfg.target = 0;  // no latency ceiling configured for this class
  burn.Configure(cfg);
  for (int i = 0; i < 100; ++i) {
    burn.Record(Msec(100), Sec(30));  // arbitrarily slow, but no target
  }
  BurnRateTracker::Report r = burn.Evaluate();
  EXPECT_EQ(r.windows_with_ops, 1u);
  EXPECT_EQ(r.alert_windows, 0u);
  EXPECT_DOUBLE_EQ(r.worst_fraction, 0.0);
}

TEST(BurnRateTracker, EmptyEvaluateIsClean) {
  BurnRateTracker burn;
  burn.Configure(BurnConfig());
  BurnRateTracker::Report r = burn.Evaluate();
  EXPECT_EQ(r.windows_with_ops, 0u);
  EXPECT_EQ(r.alert_windows, 0u);
  EXPECT_EQ(r.first_alert, -1);
  EXPECT_EQ(r.worst_window_start, -1);
}

// ---------------------------------------------------------------------------
// The two plane-wide contracts.
// ---------------------------------------------------------------------------

// After registration, the steady-state record path — histogram Record,
// gauge sampling across many grid boundaries, ring wrap — performs zero
// heap allocations (counted by the global operator-new hook).
TEST(MetricsHub, RecordPathIsAllocationFreeAfterWarmup) {
  obs::MetricsHub hub;
  obs::MetricsConfig cfg;
  cfg.period = Msec(1);
  cfg.ring_capacity = 64;
  hub.Configure(cfg);
  int depth = 0;
  hub.AddGauge(&depth, "depth", "reqs",
               [&depth](Nanos) { return static_cast<double>(depth); });
  obs::LogHistogram* h = hub.AddHistogram("lat");
  hub.OnSimulatorStart();
  hub.AdvanceTo(Msec(2));  // warmup: touch every path once
  h->Record(Usec(5));

  uint64_t before = counters().allocs;
  for (int i = 0; i < 10000; ++i) {
    depth = i & 15;
    h->Record(Usec(i));
  }
  hub.AdvanceTo(Msec(500));  // ~500 samples: wraps the 64-point ring
  EXPECT_EQ(counters().allocs, before);
  EXPECT_EQ(h->count(), 10001u);
  EXPECT_GT(hub.series().front().ring.count(), 64u);
}

// A metered run of the identical workload must produce the identical
// schedule and counters: sampling observes, never perturbs (the telemetry
// twin of obs_test's TracingDoesNotPerturbSchedule).
TEST(MetricsHub, MetricsDoNotPerturbSchedule) {
  struct Outcome {
    Nanos fsync_done = 0;
    uint64_t sim_events = 0;
    uint64_t block_submitted = 0;
    uint64_t samples = 0;
  };
  auto run = [](bool metered) {
    obs::MetricsHub hub;
    std::unique_ptr<obs::ScopedMetricsHub> scope;
    if (metered) {
      scope = std::make_unique<obs::ScopedMetricsHub>(&hub);
    }
    Simulator sim;
    StackConfig config;
    CpuModel cpu(8);
    StorageStack stack(config, &cpu, nullptr,
                       std::make_unique<NoopElevator>());
    stack.Start();  // registers the stack gauges when the hub is active
    Process* p = stack.NewProcess("app");
    Nanos fsync_done = 0;
    auto body = [&]() -> Task<void> {
      int64_t ino = co_await stack.kernel().Creat(*p, "/f");
      co_await stack.kernel().Write(*p, ino, 0, 32 * kPageSize);
      co_await stack.kernel().Fsync(*p, ino);
      fsync_done = Simulator::current().Now();
    };
    Counters before = g_counters;
    sim.Spawn(body());
    sim.Run(Sec(5));
    Counters delta = g_counters.Delta(before);
    Outcome out;
    out.fsync_done = fsync_done;
    out.sim_events = delta.sim_events;
    out.block_submitted = delta.block_submitted;
    for (const obs::MetricsHub::Series& s : hub.series()) {
      out.samples += s.ring.count();
    }
    return out;
  };
  Outcome metered = run(true);
  Outcome plain = run(false);
  EXPECT_GT(metered.fsync_done, 0);
  EXPECT_EQ(metered.fsync_done, plain.fsync_done);
  EXPECT_EQ(metered.sim_events, plain.sim_events);
  EXPECT_EQ(metered.block_submitted, plain.block_submitted);
  if (obs::kMetricsCompiled) {
    EXPECT_GT(metered.samples, 0u);  // the hub really was sampling
  }
  EXPECT_EQ(plain.samples, 0u);
}

}  // namespace
}  // namespace splitio
