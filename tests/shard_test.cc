// Sharded parallel simulation (src/sim/shard.h): the conservative epoch
// protocol must deliver cross-shard messages at their timestamps in a
// deterministic order, count causality violations, fold per-shard counters
// exactly — and, above all, produce a byte-identical physical timeline for
// every thread-pool size at a fixed shard assignment. The matrix test
// sweeps shard groupings x schedulers x seeds on the sharded DFS cluster;
// the check_shard_determinism ctest repeats the comparison over full
// process output (tables + BENCHJSON) through the bench binary.
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/dfs_sharded.h"
#include "src/metrics/counters.h"
#include "src/sim/shard.h"
#include "src/sim/simulator.h"

namespace splitio {
namespace {

TEST(ShardGroup, DeliversSetupSendsWithoutAnyLocalEvents) {
  ShardGroup::Config gc;
  gc.shards = 2;
  gc.lookahead = Usec(10);
  ShardGroup group(gc);
  bool delivered = false;
  Nanos at = -1;
  group.Setup(0, [&]() {
    group.Send(1, Usec(25), [&]() {
      delivered = true;
      at = Simulator::current().Now();
    });
  });
  ShardRunStats rs = group.Run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(at, Usec(25));
  EXPECT_EQ(rs.messages, 1u);
  EXPECT_EQ(rs.causality_violations, 0u);
}

// Two shards bounce a message back and forth; every pool size must execute
// the identical timeline: delivery times advance by exactly the one-way
// latency, and the epoch/message/event totals match the sequential run.
TEST(ShardGroup, PingPongIdenticalAcrossPoolSizes) {
  constexpr int kRounds = 64;
  constexpr Nanos kHop = Usec(10);
  std::vector<Nanos> reference;
  ShardRunStats reference_stats;
  for (int threads : {1, 2, 3}) {
    ShardGroup::Config gc;
    gc.shards = 2;
    gc.lookahead = kHop;
    gc.threads = threads;
    ShardGroup group(gc);
    std::vector<Nanos> arrivals;
    int hops = 0;
    // The handler re-sends to the peer until kRounds hops happened. It runs
    // inside whichever shard the message addressed, so Current() resolves
    // and Send is legal.
    std::function<void()> bounce = [&]() {
      arrivals.push_back(Simulator::current().Now());
      if (++hops >= kRounds) {
        return;
      }
      int self = ShardGroup::Current()->id();
      group.Send(1 - self, Simulator::current().Now() + kHop, bounce);
    };
    group.Setup(0, [&]() { group.Send(1, kHop, bounce); });
    ShardRunStats rs = group.Run();
    ASSERT_EQ(arrivals.size(), static_cast<size_t>(kRounds));
    for (int i = 0; i < kRounds; ++i) {
      EXPECT_EQ(arrivals[static_cast<size_t>(i)], kHop * (i + 1));
    }
    EXPECT_EQ(rs.messages, static_cast<uint64_t>(kRounds));
    EXPECT_EQ(rs.causality_violations, 0u);
    if (threads == 1) {
      reference = arrivals;
      reference_stats = rs;
    } else {
      EXPECT_EQ(arrivals, reference);
      EXPECT_EQ(rs.epochs, reference_stats.epochs);
      EXPECT_EQ(rs.events, reference_stats.events);
    }
  }
}

// Same-epoch ties: messages from different source shards landing at the
// same destination timestamp must execute in (deliver_time, src shard,
// src seq) order, not pool-arrival order.
TEST(ShardGroup, TieBreakBySourceShardThenSeq) {
  for (int threads : {1, 4}) {
    ShardGroup::Config gc;
    gc.shards = 4;
    gc.lookahead = Usec(10);
    gc.threads = threads;
    ShardGroup group(gc);
    std::vector<int> order;
    for (int src : {3, 1, 2}) {  // deliberately not in id order
      group.Setup(src, [&, src]() {
        group.Send(0, Usec(10), [&, src]() { order.push_back(src * 10); });
        group.Send(0, Usec(10), [&, src]() { order.push_back(src * 10 + 1); });
      });
    }
    group.Run();
    EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 21, 30, 31}));
  }
}

TEST(ShardGroup, CountsCausalityViolations) {
  ShardGroup::Config gc;
  gc.shards = 2;
  gc.lookahead = Usec(100);
  ShardGroup group(gc);
  group.Setup(0, [&]() {
    group.Send(1, Usec(99), [] {});   // below the lookahead: violation
    group.Send(1, Usec(100), [] {});  // exactly at the bound: legal
  });
  ShardRunStats rs = group.Run();
  EXPECT_EQ(rs.messages, 2u);
  EXPECT_EQ(rs.causality_violations, 1u);
}

// The whole-cluster fingerprint the determinism matrix compares: per-client
// application results, total events, and the exact counter delta of the
// run (allocs included — satellite: BENCHJSON totals must match).
struct Fingerprint {
  std::vector<uint64_t> bytes;
  std::vector<uint64_t> ops;
  uint64_t events = 0;
  uint64_t violations = 0;
  Counters delta;

  bool operator==(const Fingerprint& other) const {
    return bytes == other.bytes && ops == other.ops &&
           events == other.events && violations == other.violations &&
           std::memcmp(&delta, &other.delta, sizeof(Counters)) == 0;
  }
};

Fingerprint RunCluster(SchedKind sched, uint64_t seed, int workers_per_shard,
                       int threads, Nanos lookahead_override = 0) {
  Counters before = counters();
  Fingerprint fp;
  {
    ShardedDfs::Config config;
    config.workers = 9;
    config.workers_per_shard = workers_per_shard;
    config.block_bytes = 2ULL << 20;
    config.sched = sched;
    config.seed = seed;
    config.threads = threads;
    config.lookahead_override = lookahead_override;
    ShardedDfs cluster(config);
    cluster.Start();
    cluster.SetAccountLimit(1, 8.0 * 1024 * 1024);
    constexpr Nanos kEnd = Msec(150);
    std::vector<WorkloadStats> stats(4);
    cluster.AddClient(0, /*account=*/1, kEnd, &stats[0]);
    cluster.AddClient(1, /*account=*/1, kEnd, &stats[1]);
    cluster.AddClient(100, /*account=*/-1, kEnd, &stats[2]);
    cluster.AddClient(101, /*account=*/-1, kEnd, &stats[3]);
    ShardRunStats rs = cluster.Run(kEnd);
    for (const WorkloadStats& s : stats) {
      fp.bytes.push_back(s.bytes);
      fp.ops.push_back(s.ops);
    }
    fp.events = rs.events;
    fp.violations = rs.causality_violations;
  }
  fp.delta = counters().Delta(before);
  return fp;
}

// The headline guarantee: at a fixed shard assignment, the sharded DFS
// cluster produces the identical physical timeline AND identical counter
// totals for every pool size — across shard groupings (one node per shard
// vs several), schedulers (split, legacy, token), and seeds.
TEST(ShardedDfs, ParallelMatchesSequentialAcrossGroupingsSchedsSeeds) {
  const SchedKind kinds[] = {SchedKind::kSplitToken, SchedKind::kCfq,
                             SchedKind::kSplitDeadline};
  const uint64_t seeds[] = {1234, 99991};
  for (SchedKind sched : kinds) {
    for (uint64_t seed : seeds) {
      for (int grouping : {1, 4}) {  // 10 shards vs 4 (9 workers + clients)
        Fingerprint seq = RunCluster(sched, seed, grouping, /*threads=*/1);
        EXPECT_EQ(seq.violations, 0u);
        EXPECT_GT(seq.events, 0u);
        for (int threads : {2, 4}) {
          Fingerprint par = RunCluster(sched, seed, grouping, threads);
          EXPECT_TRUE(par == seq)
              << "sched=" << SchedName(sched) << " seed=" << seed
              << " grouping=" << grouping << " threads=" << threads;
        }
      }
    }
  }
}

// Re-running the same configuration twice in one process must also agree —
// no state bleeds across ShardedDfs instances.
TEST(ShardedDfs, RepeatRunsAreIdentical) {
  Fingerprint a = RunCluster(SchedKind::kSplitToken, 7, 1, 2);
  Fingerprint b = RunCluster(SchedKind::kSplitToken, 7, 1, 2);
  EXPECT_TRUE(a == b);
}

// Negative control: inflating the lookahead past the real RPC latency
// breaks the conservative contract and must be caught by the violation
// counter (the determinism ctest asserts the same through the bench CLI).
TEST(ShardedDfs, PerturbedLookaheadIsCaught) {
  Fingerprint fp =
      RunCluster(SchedKind::kSplitToken, 1234, 1, /*threads=*/1,
                 /*lookahead_override=*/Usec(200));
  EXPECT_GT(fp.violations, 0u);
}

// Counter-fold soundness in isolation: shard activity must land in the
// calling thread's counters (in shard-id order), and the pool machinery's
// own footprint must not.
TEST(ShardGroup, FoldsShardCountersIntoCaller) {
  for (int threads : {1, 3}) {
    Counters before = counters();
    ShardGroup::Config gc;
    gc.shards = 3;
    gc.lookahead = Usec(10);
    gc.threads = threads;
    ShardGroup group(gc);
    for (int i = 0; i < 3; ++i) {
      group.Setup(i, [&]() {
        Simulator::current().Spawn([]() -> Task<void> {
          for (int k = 0; k < 5; ++k) {
            co_await Delay(Usec(3));
          }
        }());
      });
    }
    group.Run();
    Counters delta = counters().Delta(before);
    // 3 shards x (1 spawn + 5 delays) = 18 wake-ups, every pool size.
    EXPECT_EQ(delta.sim_events, 18u);
  }
}

}  // namespace
}  // namespace splitio
