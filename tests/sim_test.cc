// Unit tests for the discrete-event simulator core: clock, task
// composition, spawn/join, synchronization primitives, CPU model, RNG.
//
// Note the lambda-coroutine convention (see src/sim/task.h): every capturing
// lambda coroutine is named so its closure outlives Simulator::Run().
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/cpu.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace splitio {
namespace {

TEST(SimTime, UnitHelpers) {
  EXPECT_EQ(Usec(3), 3000);
  EXPECT_EQ(Msec(2), 2000000);
  EXPECT_EQ(Sec(1), 1000000000);
  EXPECT_DOUBLE_EQ(ToSeconds(Sec(5)), 5.0);
  EXPECT_DOUBLE_EQ(ToMillis(Msec(7)), 7.0);
}

TEST(SimTime, TransferTime) {
  // 100 MB/s -> 1 MB takes 10 ms.
  EXPECT_EQ(TransferTime(1000000, 100.0 * 1000 * 1000), Msec(10));
}

TEST(Simulator, ClockAdvancesWithDelays) {
  Simulator sim;
  std::vector<Nanos> timestamps;
  auto body = [&]() -> Task<void> {
    timestamps.push_back(Simulator::current().Now());
    co_await Delay(Msec(5));
    timestamps.push_back(Simulator::current().Now());
    co_await Delay(Msec(10));
    timestamps.push_back(Simulator::current().Now());
  };
  sim.Spawn(body());
  sim.Run();
  ASSERT_EQ(timestamps.size(), 3u);
  EXPECT_EQ(timestamps[0], 0);
  EXPECT_EQ(timestamps[1], Msec(5));
  EXPECT_EQ(timestamps[2], Msec(15));
}

TEST(Simulator, TasksInterleaveDeterministically) {
  Simulator sim;
  std::vector<int> order;
  auto worker = [&](int id, Nanos period) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await Delay(period);
      order.push_back(id);
    }
  };
  sim.Spawn(worker(1, Msec(10)));
  sim.Spawn(worker(2, Msec(15)));
  sim.Run();
  // Wake-ups: t=10:1, t=15:2, t=20:1, t=30: worker 2 enqueued its wake-up at
  // t=15, worker 1 at t=20, so 2 precedes 1; t=45:2.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1, 2}));
}

TEST(Simulator, ImmediateWakeupsInterleaveWithTimedEvents) {
  // Same-time wake-ups take the O(1) FIFO fast path; execution order must
  // still be global (time, seq) order across the FIFO and the heap.
  Simulator sim;
  std::vector<int> order;
  Event ev;
  auto waiter = [&]() -> Task<void> {
    co_await ev.Wait();
    order.push_back(1);  // woken at t=10 via the immediate FIFO
  };
  auto timed = [&]() -> Task<void> {
    co_await Delay(Msec(10));
    order.push_back(2);
  };
  auto notifier = [&]() -> Task<void> {
    co_await Delay(Msec(10));
    order.push_back(3);
    ev.NotifyAll();
  };
  auto later = [&]() -> Task<void> {
    co_await Delay(Msec(12));
    order.push_back(4);
  };
  sim.Spawn(waiter());
  sim.Spawn(timed());
  sim.Spawn(notifier());
  sim.Spawn(later());
  sim.Run();
  // t=10: timed (scheduled first), then notifier, then the waiter's
  // notification (highest seq); t=12: later — after the FIFO drains.
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1, 4}));
}

TEST(Simulator, NestedTaskComposition) {
  Simulator sim;
  Nanos finish = -1;
  auto inner = [](Nanos d) -> Task<int> {
    co_await Delay(d);
    co_return 42;
  };
  auto outer = [&]() -> Task<void> {
    int v = co_await inner(Msec(3));
    EXPECT_EQ(v, 42);
    v = co_await inner(Msec(4));
    EXPECT_EQ(v, 42);
    finish = Simulator::current().Now();
  };
  sim.Spawn(outer());
  sim.Run();
  EXPECT_EQ(finish, Msec(7));
}

TEST(Simulator, JoinWaitsForCompletion) {
  Simulator sim;
  bool child_done = false;
  auto child_body = [&]() -> Task<void> {
    co_await Delay(Msec(50));
    child_done = true;
  };
  JoinHandle child = sim.Spawn(child_body());
  bool observed = false;
  auto joiner = [&]() -> Task<void> {
    co_await Join(child);
    observed = child_done;
    EXPECT_EQ(Simulator::current().Now(), Msec(50));
  };
  sim.Spawn(joiner());
  sim.Run();
  EXPECT_TRUE(observed);
}

TEST(Simulator, JoinOnFinishedTaskReturnsImmediately) {
  Simulator sim;
  auto noop = []() -> Task<void> { co_return; };
  JoinHandle child = sim.Spawn(noop());
  bool ran = false;
  auto joiner = [&]() -> Task<void> {
    co_await Delay(Msec(10));
    co_await Join(child);  // already done
    ran = true;
    EXPECT_EQ(Simulator::current().Now(), Msec(10));
  };
  sim.Spawn(joiner());
  sim.Run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, RunUntilStopsClock) {
  Simulator sim;
  int ticks = 0;
  auto ticker = [&]() -> Task<void> {
    for (;;) {
      co_await Delay(Msec(10));
      ++ticks;
    }
  };
  sim.Spawn(ticker());
  sim.Run(Msec(95));
  EXPECT_EQ(ticks, 9);
  EXPECT_EQ(sim.Now(), Msec(95));
}

TEST(Event, NotifyOneWakesInFifoOrder) {
  Simulator sim;
  Event event;
  std::vector<int> woke;
  auto waiter = [&](int id) -> Task<void> {
    co_await event.Wait();
    woke.push_back(id);
  };
  auto notifier = [&]() -> Task<void> {
    co_await Delay(Msec(1));
    event.NotifyOne();
    co_await Delay(Msec(1));
    event.NotifyOne();
    co_await Delay(Msec(1));
    event.NotifyAll();
  };
  sim.Spawn(waiter(1));
  sim.Spawn(waiter(2));
  sim.Spawn(waiter(3));
  sim.Spawn(notifier());
  sim.Run();
  EXPECT_EQ(woke, (std::vector<int>{1, 2, 3}));
}

TEST(Latch, ReleasesAllWaitersAndLaterArrivals) {
  Simulator sim;
  Latch latch;
  int released = 0;
  auto waiter = [&]() -> Task<void> {
    co_await latch.Wait();
    ++released;
  };
  auto setter = [&]() -> Task<void> {
    co_await Delay(Msec(2));
    latch.Set();
  };
  auto late_waiter = [&]() -> Task<void> {
    co_await Delay(Msec(5));  // after Set
    co_await latch.Wait();
    ++released;
  };
  sim.Spawn(waiter());
  sim.Spawn(waiter());
  sim.Spawn(setter());
  sim.Spawn(late_waiter());
  sim.Run();
  EXPECT_EQ(released, 3);
  EXPECT_TRUE(latch.is_set());
}

TEST(Semaphore, LimitsConcurrency) {
  Simulator sim;
  Semaphore sem(2);
  int active = 0;
  int max_active = 0;
  auto worker = [&]() -> Task<void> {
    co_await sem.Acquire();
    ++active;
    max_active = std::max(max_active, active);
    co_await Delay(Msec(10));
    --active;
    sem.Release();
  };
  for (int i = 0; i < 6; ++i) {
    sim.Spawn(worker());
  }
  sim.Run();
  EXPECT_EQ(max_active, 2);
  EXPECT_EQ(sim.Now(), Msec(30));
}

TEST(Mutex, ProvidesMutualExclusion) {
  Simulator sim;
  Mutex mu;
  std::vector<int> log;
  auto critical = [&](int id) -> Task<void> {
    co_await mu.Lock();
    log.push_back(id);
    co_await Delay(Msec(5));
    log.push_back(id);
    mu.Unlock();
  };
  sim.Spawn(critical(1));
  sim.Spawn(critical(2));
  sim.Run();
  EXPECT_EQ(log, (std::vector<int>{1, 1, 2, 2}));
}

TEST(CpuModel, UncontendedRunsAtFullSpeed) {
  Simulator sim;
  CpuModel cpu(4);
  Nanos elapsed = -1;
  auto body = [&]() -> Task<void> {
    Nanos start = Simulator::current().Now();
    co_await cpu.Consume(Msec(10));
    elapsed = Simulator::current().Now() - start;
  };
  sim.Spawn(body());
  sim.Run();
  EXPECT_EQ(elapsed, Msec(10));
}

TEST(CpuModel, OverloadStretchesWork) {
  Simulator sim;
  CpuModel cpu(2);
  std::vector<Nanos> elapsed;
  auto burn = [&]() -> Task<void> {
    Nanos start = Simulator::current().Now();
    co_await cpu.Consume(Msec(10));
    elapsed.push_back(Simulator::current().Now() - start);
  };
  for (int i = 0; i < 8; ++i) {
    sim.Spawn(burn());
  }
  sim.Run();
  ASSERT_EQ(elapsed.size(), 8u);
  // 8 runnable on 2 cores -> roughly 4x stretch.
  for (Nanos e : elapsed) {
    EXPECT_GE(e, Msec(30));
    EXPECT_LE(e, Msec(45));
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Below(17);
    EXPECT_LT(v, 17u);
    int64_t r = rng.Range(-5, 5);
    EXPECT_GE(r, -5);
    EXPECT_LE(r, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace splitio
