// Stress-tier tests: oracle evaluation on clean scenarios, mutation
// negative controls (each injected bug must be caught, minimized to a
// handful of ops, and reproducible from its repro file), and the replay
// path's byte-for-byte comparison.
#include <gtest/gtest.h>

#include <fstream>

#include "src/stress/oracles.h"
#include "src/stress/runner.h"
#include "src/stress/shrink.h"

namespace splitio {
namespace {

TEST(StressOracles, CleanSeedsPass) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Scenario s = GenerateScenario(seed);
    std::vector<OracleFailure> failures = EvaluateScenario(s);
    EXPECT_TRUE(failures.empty())
        << "seed " << seed << ": " << DescribeFailures(failures);
  }
}

TEST(StressOracles, EvaluationIsDeterministic) {
  Scenario s = GenerateScenario(3);
  s.stack.control = NegativeControl::kDropCompletion;
  std::vector<OracleFailure> a = EvaluateScenario(s);
  std::vector<OracleFailure> b = EvaluateScenario(s);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].oracle, b[i].oracle);
    EXPECT_EQ(a[i].detail, b[i].detail);
  }
}

// Runs a one-seed campaign with `control` forced and asserts the failure is
// caught, minimized to at most 8 ops, written as a repro, and that the
// repro replays byte-identically.
void ExpectControlCaught(NegativeControl control,
                         const std::string& expected_oracle_a,
                         const std::string& expected_oracle_b) {
  StressOptions options;
  options.seed_start = 1;
  options.num_seeds = 2;
  options.force_control = control;
  options.out_dir =
      testing::TempDir() + "stress_ctl_" + NegativeControlName(control);
  StressReport report = RunStress(options, nullptr);
  ASSERT_EQ(report.seeds_run, 2);
  ASSERT_EQ(report.failures.size(), 2u)
      << "control " << NegativeControlName(control) << " not caught";
  for (const StressFailure& f : report.failures) {
    EXPECT_TRUE(f.oracle == expected_oracle_a || f.oracle == expected_oracle_b)
        << "unexpected oracle " << f.oracle;
    EXPECT_TRUE(f.minimized);
    EXPECT_LE(f.scenario.program.ops.size(), 8u)
        << "repro not minimized: " << ScenarioToJson(f.scenario);
    // The minimized scenario still carries the control (self-contained).
    EXPECT_EQ(f.scenario.stack.control, control);
    ASSERT_FALSE(f.repro_path.empty());
    std::string message;
    EXPECT_EQ(ReplayRepro(f.repro_path, &message), 0) << message;
  }
}

TEST(StressNegativeControls, DropCompletionCaught) {
  ExpectControlCaught(NegativeControl::kDropCompletion, "completion",
                      "conservation");
}

TEST(StressNegativeControls, MisorderedElevatorCaught) {
  ExpectControlCaught(NegativeControl::kMisorderedElevator, "completion",
                      "conservation");
}

TEST(StressNegativeControls, SkipPreflushCaughtByCrashOracle) {
  ExpectControlCaught(NegativeControl::kSkipPreflush, "crash", "crash");
}

TEST(StressShrink, UnreproducibleFailureIsReported) {
  Scenario s = GenerateScenario(1);  // clean scenario
  ShrinkResult result = Minimize(s, "completion");
  EXPECT_FALSE(result.reproduced);
  EXPECT_EQ(result.scenario, s);
  EXPECT_EQ(result.evals, 1);
}

TEST(StressReplay, DetectsTamperedDetail) {
  StressOptions options;
  options.num_seeds = 1;
  options.force_control = NegativeControl::kDropCompletion;
  options.out_dir = testing::TempDir() + "stress_tamper";
  StressReport report = RunStress(options, nullptr);
  ASSERT_EQ(report.failures.size(), 1u);
  StressFailure tampered = report.failures[0];
  tampered.detail += " (edited)";
  std::string path = options.out_dir + "/tampered.json";
  std::ofstream(path) << ReproToJson(tampered);
  std::string message;
  EXPECT_EQ(ReplayRepro(path, &message), 1) << message;
}

TEST(StressReplay, MissingFileIsAnError) {
  std::string message;
  EXPECT_EQ(ReplayRepro(testing::TempDir() + "does_not_exist.json", &message),
            2);
}

TEST(StressCampaign, BudgetTruncatesSeedRange) {
  StressOptions options;
  options.num_seeds = 1000000;
  options.budget_seconds = 1;
  StressReport report = RunStress(options, nullptr);
  EXPECT_TRUE(report.ok()) << DescribeFailures({});
  EXPECT_TRUE(report.budget_exhausted);
  EXPECT_LT(report.seeds_run, 1000000);
  EXPECT_GT(report.seeds_run, 0);
}

}  // namespace
}  // namespace splitio
