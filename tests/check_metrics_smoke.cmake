# Telemetry-plane smoke through the real CLIs: one metered bench run must
# produce a readable timeline, and metrics_report must both accept it and
# *gate* a regression against it:
#   - the bench writes non-empty JSONL + CSV timelines and folds a
#     "timeline_series" summary into BENCHJSON,
#   - `metrics_report <run>` renders it (exit 0),
#   - `metrics_report --diff <baseline> <run>` is clean against the
#     committed baseline (exit 0; the run is deterministic),
#   - diffing against a doctored baseline whose peaks are zeroed must fail
#     (exit 1) and name the queue-depth series that regressed — the CI gate
#     for queue-depth timeline regressions.
# Invoked by ctest; pass -DBENCH=<bench binary> -DMETRICS_REPORT=<binary>
# -DBASELINE=<committed timeline> -DWORKDIR=<scratch dir>.
foreach(var BENCH METRICS_REPORT BASELINE WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "pass -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORKDIR})
set(timeline ${WORKDIR}/timeline.jsonl)
set(csv ${WORKDIR}/timeline.csv)
file(REMOVE ${timeline} ${csv})

# detect_leaks=0: see check_determinism.cmake.
execute_process(COMMAND ${CMAKE_COMMAND} -E env ASAN_OPTIONS=detect_leaks=0
                ${BENCH} --metrics ${timeline} --metrics-csv ${csv}
                OUTPUT_VARIABLE out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "metered bench exited ${rc}")
endif()
foreach(f ${timeline} ${csv})
  if(NOT EXISTS ${f})
    message(FATAL_ERROR "metered run wrote no file at ${f}")
  endif()
  file(SIZE ${f} fsize)
  if(fsize EQUAL 0)
    message(FATAL_ERROR "${f} is empty")
  endif()
endforeach()
string(FIND "${out}" "\"timeline_series\":" tl_pos)
if(tl_pos EQUAL -1)
  message(FATAL_ERROR "metered BENCHJSON carries no timeline summary")
endif()

# The report CLI renders the run.
execute_process(COMMAND ${METRICS_REPORT} ${timeline}
                OUTPUT_VARIABLE report_out RESULT_VARIABLE report_rc)
if(NOT report_rc EQUAL 0)
  message(FATAL_ERROR "metrics_report exited ${report_rc}:\n${report_out}")
endif()
string(FIND "${report_out}" "elv_depth" series_pos)
if(series_pos EQUAL -1)
  message(FATAL_ERROR "report lacks the elevator-depth series:\n${report_out}")
endif()

# Clean diff against the committed baseline: the bench is deterministic, so
# a fresh run regresses nothing.
execute_process(COMMAND ${METRICS_REPORT} --diff ${BASELINE} ${timeline}
                OUTPUT_VARIABLE diff_out RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
          "clean diff against the baseline failed (${diff_rc}):\n${diff_out}")
endif()

# Regression gate: zero every peak/avg in a doctored copy of the baseline
# and diff the fresh run against it — the real (nonzero) queue depths must
# now read as regressions, exit 1, and name the offending series.
file(READ ${BASELINE} doctored)
string(REGEX REPLACE "\"peak\":[0-9.eE+-]+" "\"peak\":0" doctored
       "${doctored}")
string(REGEX REPLACE "\"avg\":[0-9.eE+-]+" "\"avg\":0" doctored "${doctored}")
set(regressed ${WORKDIR}/regressed_baseline.jsonl)
file(WRITE ${regressed} "${doctored}")
execute_process(COMMAND ${METRICS_REPORT} --diff ${regressed} ${timeline}
                OUTPUT_VARIABLE gate_out RESULT_VARIABLE gate_rc)
if(NOT gate_rc EQUAL 1)
  message(FATAL_ERROR "regression gate did not fire (exit ${gate_rc}, "
          "wanted 1):\n${gate_out}")
endif()
string(FIND "${gate_out}" "REGRESSION" reg_pos)
string(FIND "${gate_out}" "elv_depth" depth_pos)
if(reg_pos EQUAL -1 OR depth_pos EQUAL -1)
  message(FATAL_ERROR "gate fired but did not name the regressed "
          "queue-depth series:\n${gate_out}")
endif()
message(STATUS "telemetry smoke: timeline exported, report rendered, "
        "baseline diff clean, regression gate fires and names offenders")
