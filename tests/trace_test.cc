// Tests for the I/O trace recorder.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>

#include "src/block/noop.h"
#include "src/core/storage_stack.h"
#include "src/device/trace.h"
#include "src/sched/split_token.h"
#include "src/sim/simulator.h"

namespace splitio {
namespace {

TEST(IoTracer, RecordsCompletionsWithCauses) {
  Simulator sim;
  StackConfig config;
  CpuModel cpu(8);
  StorageStack stack(config, &cpu, nullptr, std::make_unique<NoopElevator>());
  IoTracer tracer;
  tracer.Attach(&stack.block());
  stack.Start();
  Process* p = stack.NewProcess("app");
  auto body = [&]() -> Task<void> {
    int64_t ino = co_await stack.kernel().Creat(*p, "/f");
    co_await stack.kernel().Write(*p, ino, 0, 8 * kPageSize);
    co_await stack.kernel().Fsync(*p, ino);
  };
  sim.Spawn(body());
  sim.Run(Sec(5));
  ASSERT_FALSE(tracer.entries().empty());
  bool saw_data_write = false;
  bool saw_journal = false;
  for (const TraceEntry& e : tracer.entries()) {
    EXPECT_GE(e.complete_time, e.enqueue_time);
    EXPECT_GT(e.service_time, 0);
    if (e.is_journal) {
      saw_journal = true;
    } else if (e.is_write) {
      saw_data_write = true;
      ASSERT_EQ(e.causes.size(), 1u);
      EXPECT_EQ(e.causes[0], p->pid());
    }
  }
  EXPECT_TRUE(saw_data_write);
  EXPECT_TRUE(saw_journal);
}

TEST(IoTracer, CsvHasHeaderAndRows) {
  Simulator sim;
  StackConfig config;
  CpuModel cpu(8);
  StorageStack stack(config, &cpu, nullptr, std::make_unique<NoopElevator>());
  IoTracer tracer;
  tracer.Attach(&stack.block());
  stack.Start();
  Process* p = stack.NewProcess("app");
  auto body = [&]() -> Task<void> {
    int64_t ino = stack.fs().CreatePreallocated("/f", 1 << 20);
    co_await stack.kernel().Read(*p, ino, 0, 1 << 20);
  };
  sim.Spawn(body());
  sim.Run(Sec(5));
  std::ostringstream out;
  tracer.WriteCsv(out);
  std::string csv = out.str();
  EXPECT_NE(csv.find("enqueue_ns,complete_ns,sector"), std::string::npos);
  EXPECT_NE(csv.find(",R,"), std::string::npos);
  // Header + one line per entry.
  size_t lines = static_cast<size_t>(
      std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, tracer.entries().size() + 1);
}

TEST(IoTracer, SummarizeByCauseSplitsSharedRequests) {
  IoTracer tracer;
  Simulator sim;
  HddModel hdd;
  NoopElevator noop;
  BlockLayer block(&hdd, &noop);
  tracer.Attach(&block);
  block.Start();
  Process a(1, "a");
  auto body = [&]() -> Task<void> {
    auto req = std::make_shared<BlockRequest>();
    req->sector = 0;
    req->bytes = 2 * kPageSize;
    req->is_write = true;
    req->causes = CauseSet{1, 2};  // shared by two causes
    co_await block.SubmitAndWait(req);
  };
  sim.Spawn(body());
  sim.Run(Sec(1));
  auto summary = tracer.SummarizeByCause();
  ASSERT_EQ(summary.size(), 2u);
  EXPECT_EQ(summary[1].bytes, summary[2].bytes);
  EXPECT_EQ(summary[1].device_time, summary[2].device_time);
  EXPECT_EQ(summary[1].requests, 1u);
}

// Regression: integer division across causes used to drop up to n-1 ns and
// bytes per request, so per-cause totals no longer summed to the per-request
// totals.
TEST(IoTracer, SummarizeByCauseConservesTimeAndBytes) {
  IoTracer tracer;
  Simulator sim;
  HddModel hdd;
  NoopElevator noop;
  BlockLayer block(&hdd, &noop);
  tracer.Attach(&block);
  block.Start();
  auto body = [&]() -> Task<void> {
    auto req = std::make_shared<BlockRequest>();
    req->sector = 0;
    req->bytes = kPageSize;  // 4096: not divisible by 3 causes
    req->is_write = true;
    req->causes = CauseSet{1, 2, 3};
    co_await block.SubmitAndWait(req);
  };
  sim.Spawn(body());
  sim.Run(Sec(1));
  ASSERT_EQ(tracer.entries().size(), 1u);
  const TraceEntry& e = tracer.entries()[0];
  auto summary = tracer.SummarizeByCause();
  ASSERT_EQ(summary.size(), 3u);
  uint64_t total_bytes = 0;
  Nanos total_time = 0;
  uint64_t min_bytes = e.bytes;
  uint64_t max_bytes = 0;
  for (const auto& [pid, pc] : summary) {
    total_bytes += pc.bytes;
    total_time += pc.device_time;
    min_bytes = std::min(min_bytes, pc.bytes);
    max_bytes = std::max(max_bytes, pc.bytes);
  }
  EXPECT_EQ(total_bytes, e.bytes);
  EXPECT_EQ(total_time, e.service_time);
  // Still an even split: shares differ by at most one unit.
  EXPECT_LE(max_bytes - min_bytes, 1u);
}

TEST(IoTracer, SequentialFraction) {
  IoTracer tracer;
  Simulator sim;
  HddModel hdd;
  NoopElevator noop;
  BlockLayer block(&hdd, &noop);
  tracer.Attach(&block);
  block.Start();
  auto body = [&]() -> Task<void> {
    // Three perfectly sequential writes, then one far seek.
    uint64_t sector = 0;
    for (int i = 0; i < 3; ++i) {
      auto req = std::make_shared<BlockRequest>();
      req->sector = sector;
      req->bytes = kPageSize;
      req->is_write = true;
      sector += kPageSize / kSectorSize;
      co_await block.SubmitAndWait(req);
    }
    auto far = std::make_shared<BlockRequest>();
    far->sector = 1 << 20;
    far->bytes = kPageSize;
    far->is_write = true;
    co_await block.SubmitAndWait(far);
  };
  sim.Spawn(body());
  sim.Run(Sec(1));
  // 2 of 3 transitions sequential.
  EXPECT_NEAR(tracer.SequentialFraction(), 2.0 / 3.0, 1e-9);
}

TEST(IoTracer, DetachStopsRecordingAndKeepsEntries) {
  IoTracer tracer;
  tracer.Detach();  // detaching while unattached is a no-op
  EXPECT_FALSE(tracer.attached());
  Simulator sim;
  HddModel hdd;
  NoopElevator noop;
  BlockLayer block(&hdd, &noop);
  tracer.Attach(&block);
  EXPECT_TRUE(tracer.attached());
  block.Start();
  auto one_write = [&](uint64_t sector) -> Task<void> {
    auto req = std::make_shared<BlockRequest>();
    req->sector = sector;
    req->bytes = kPageSize;
    req->is_write = true;
    co_await block.SubmitAndWait(req);
  };
  auto body = [&]() -> Task<void> {
    co_await one_write(0);
    tracer.Detach();
    co_await one_write(1 << 20);  // not recorded
  };
  sim.Spawn(body());
  sim.Run(Sec(1));
  EXPECT_FALSE(tracer.attached());
  // The entry recorded before Detach survives it.
  ASSERT_EQ(tracer.entries().size(), 1u);
  EXPECT_EQ(tracer.entries()[0].sector, 0u);
}

TEST(IoTracer, CoexistsWithSplitSchedulerHook) {
  Simulator sim;
  StackConfig config;
  CpuModel cpu(8);
  auto sched = std::make_unique<SplitTokenScheduler>();
  sched->SetAccountLimit(1, 4.0 * 1024 * 1024);
  SplitTokenScheduler* token = sched.get();
  StorageStack stack(config, &cpu, std::move(sched), nullptr);
  IoTracer tracer;
  tracer.Attach(&stack.block());  // appends after the scheduler's hook
  stack.Start();
  Process* p = stack.NewProcess("app");
  p->set_account(1);
  auto body = [&]() -> Task<void> {
    int64_t ino = co_await stack.kernel().Creat(*p, "/f");
    co_await stack.kernel().Write(*p, ino, 0, 4 << 20);
    co_await stack.kernel().Fsync(*p, ino);
  };
  sim.Spawn(body());
  sim.Run(Sec(20));
  // Both consumers observed the I/O: the tracer has entries AND the token
  // scheduler revised the account at block completion.
  EXPECT_FALSE(tracer.entries().empty());
  EXPECT_NE(token->account_balance(1), 0.0);
}

}  // namespace
}  // namespace splitio
