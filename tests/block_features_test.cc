// Tests for block-layer features beyond basic dispatch: request merging,
// flush/barrier requests, readahead, and the real-time ionice class.
#include <gtest/gtest.h>

#include <memory>

#include "src/block/block_deadline.h"
#include "src/block/block_layer.h"
#include "src/block/cfq.h"
#include "src/block/noop.h"
#include "src/core/storage_stack.h"
#include "src/device/device.h"
#include "src/sim/simulator.h"

namespace splitio {
namespace {

BlockRequestPtr MakeReq(uint64_t sector, uint32_t bytes, bool write,
                        Process* submitter = nullptr) {
  auto req = std::make_shared<BlockRequest>();
  req->sector = sector;
  req->bytes = bytes;
  req->is_write = write;
  req->submitter = submitter;
  return req;
}

TEST(Merging, NoopBackMergesContiguousWrites) {
  Simulator sim;
  HddModel hdd;
  NoopElevator noop;
  BlockLayer block(&hdd, &noop);
  block.Start();
  auto a = MakeReq(1000, 8 * kPageSize, true);
  auto b = MakeReq(1000 + 8 * kPageSize / kSectorSize, 8 * kPageSize, true);
  bool both_done = false;
  auto body = [&]() -> Task<void> {
    block.Submit(a);
    block.Submit(b);  // contiguous: should merge into a
    co_await a->done.Wait();
    co_await b->done.Wait();
    both_done = true;
  };
  sim.Spawn(body());
  sim.Run(Sec(5));
  EXPECT_TRUE(both_done);
  EXPECT_EQ(block.total_merged(), 1u);
  EXPECT_EQ(block.total_completed(), 1u);  // one device request
  EXPECT_EQ(a->bytes, 16u * kPageSize);
}

TEST(Merging, NoopRefusesNonAdjacentOrMixed) {
  Simulator sim;
  NoopElevator noop;
  auto w = MakeReq(1000, kPageSize, true);
  noop.Add(w);
  // Gap.
  EXPECT_FALSE(noop.TryMerge(MakeReq(5000, kPageSize, true)));
  // Adjacent but a read.
  EXPECT_FALSE(
      noop.TryMerge(MakeReq(1000 + kPageSize / kSectorSize, kPageSize, false)));
  // Journal writes never merge.
  auto j = MakeReq(1000 + kPageSize / kSectorSize, kPageSize, true);
  j->is_journal = true;
  EXPECT_FALSE(noop.TryMerge(j));
}

TEST(Merging, CapsAtMaxMergedBytes) {
  Simulator sim;
  NoopElevator noop;
  auto big = MakeReq(0, kMaxMergedBytes - kPageSize, true);
  noop.Add(big);
  // One more page fits...
  EXPECT_TRUE(noop.TryMerge(
      MakeReq((kMaxMergedBytes - kPageSize) / kSectorSize, kPageSize, true)));
  // ...the next would exceed the cap.
  EXPECT_FALSE(noop.TryMerge(
      MakeReq(kMaxMergedBytes / kSectorSize, kPageSize, true)));
}

TEST(Merging, BlockDeadlineMergesIntoSortedQueue) {
  Simulator sim;
  BlockDeadlineElevator elv;
  auto a = MakeReq(1 << 20, 8 * kPageSize, true);
  a->enqueue_time = 0;
  elv.Add(a);
  auto b = MakeReq((1 << 20) + 8 * kPageSize / kSectorSize, 8 * kPageSize,
                   true);
  EXPECT_TRUE(elv.TryMerge(b));
  EXPECT_EQ(a->bytes, 16u * kPageSize);
  ASSERT_EQ(a->merged.size(), 1u);
  EXPECT_EQ(a->merged[0], b);
}

TEST(Merging, MergedCausesUnion) {
  Simulator sim;
  NoopElevator noop;
  auto a = MakeReq(0, kPageSize, true);
  a->causes = CauseSet{1};
  noop.Add(a);
  auto b = MakeReq(kPageSize / kSectorSize, kPageSize, true);
  b->causes = CauseSet{2};
  EXPECT_TRUE(noop.TryMerge(b));
  EXPECT_TRUE(a->causes.Contains(1));
  EXPECT_TRUE(a->causes.Contains(2));
}

TEST(Flush, FlushRequestCostsFlushLatency) {
  Simulator sim;
  HddConfig config;
  config.flush_latency = Msec(12);
  HddModel hdd(config);
  NoopElevator noop;
  BlockLayer block(&hdd, &noop);
  block.Start();
  Nanos elapsed = 0;
  auto body = [&]() -> Task<void> {
    auto flush = std::make_shared<BlockRequest>();
    flush->is_flush = true;
    flush->is_write = true;
    Nanos start = Simulator::current().Now();
    co_await block.SubmitAndWait(flush);
    elapsed = Simulator::current().Now() - start;
  };
  sim.Spawn(body());
  sim.Run(Sec(1));
  EXPECT_EQ(elapsed, Msec(12));
}

TEST(Readahead, SequentialStreamPrefetches) {
  Simulator sim;
  StackConfig config;
  config.layout.readahead_pages = 32;  // 128 KB window
  CpuModel cpu(8);
  StorageStack stack(config, &cpu, nullptr, std::make_unique<NoopElevator>());
  stack.Start();
  Process* p = stack.NewProcess("reader");
  int64_t ino = stack.fs().CreatePreallocated("/f", 16 << 20);
  auto body = [&]() -> Task<void> {
    co_await stack.kernel().Read(*p, ino, 0, 4 * kPageSize);
    co_await stack.kernel().Read(*p, ino, 4 * kPageSize, 4 * kPageSize);
    // The second (sequential) read prefetched a 32-page window, so the
    // third read's pages are already resident; any device traffic it causes
    // is only the window advancing (<= the requested size), not the data.
    uint64_t before = stack.device().total_bytes_read();
    EXPECT_GE(before, (4 + 4 + 32) * kPageSize);  // data + readahead window
    co_await stack.kernel().Read(*p, ino, 8 * kPageSize, 4 * kPageSize);
    EXPECT_LE(stack.device().total_bytes_read() - before, 4 * kPageSize);
  };
  sim.Spawn(body());
  sim.Run(Sec(5));
}

TEST(Readahead, RandomReadsDoNotPrefetch) {
  Simulator sim;
  StackConfig config;
  config.layout.readahead_pages = 32;
  CpuModel cpu(8);
  StorageStack stack(config, &cpu, nullptr, std::make_unique<NoopElevator>());
  stack.Start();
  Process* p = stack.NewProcess("reader");
  int64_t ino = stack.fs().CreatePreallocated("/f", 64 << 20);
  auto body = [&]() -> Task<void> {
    co_await stack.kernel().Read(*p, ino, 40 << 20, kPageSize);
    co_await stack.kernel().Read(*p, ino, 2 << 20, kPageSize);
    co_await stack.kernel().Read(*p, ino, 30 << 20, kPageSize);
  };
  sim.Spawn(body());
  sim.Run(Sec(5));
  // Only the requested pages were read — no wasted prefetch.
  EXPECT_EQ(stack.device().total_bytes_read(), 3u * kPageSize);
}

TEST(RealTimeClass, RtServedBeforeBestEffort) {
  Simulator sim;
  HddModel hdd;
  CfqElevator cfq;
  BlockLayer block(&hdd, &cfq);
  block.Start();
  Process be(1, "be");
  Process rt(2, "rt");
  rt.set_io_class(IoClass::kRealTime);
  std::vector<int> completion_order;
  auto body = [&]() -> Task<void> {
    // Submit BE first, then RT at the same instant: RT must finish first.
    auto be_req = MakeReq(0, kPageSize, false, &be);
    auto rt_req = MakeReq(5000000, kPageSize, false, &rt);
    block.Submit(be_req);
    block.Submit(rt_req);
    auto waiter = [&completion_order](BlockRequestPtr r, int id) -> Task<void> {
      co_await r->done.Wait();
      completion_order.push_back(id);
    };
    co_await waiter(rt_req, 2);
    co_await waiter(be_req, 1);
  };
  sim.Spawn(body());
  sim.Run(Sec(5));
  ASSERT_EQ(completion_order.size(), 2u);
  EXPECT_EQ(completion_order[0], 2);  // real-time first
}

}  // namespace
}  // namespace splitio
