// Tier-1 coverage for the stress subsystem's deterministic pieces: program
// and scenario JSON round-trips, generator determinism, rename semantics,
// and executor smoke runs (including the cow stack).
#include <gtest/gtest.h>

#include <cerrno>

#include "src/stress/executor.h"
#include "src/stress/runner.h"
#include "src/stress/scenario.h"
#include "src/workload/program.h"

namespace splitio {
namespace {

WorkloadProgram SampleProgram() {
  WorkloadProgram p;
  p.num_procs = 2;
  p.num_files = 3;
  p.priorities = {1, 6};
  StressOp w;
  w.kind = StressOpKind::kWrite;
  w.proc = 0;
  w.file = 2;
  w.offset = 8192;
  w.len = 4096;
  w.delay = Msec(3);
  p.ops.push_back(w);
  StressOp r;
  r.kind = StressOpKind::kRead;
  r.proc = 1;
  r.file = 0;
  r.offset = 0;
  r.len = 512;
  p.ops.push_back(r);
  StressOp f;
  f.kind = StressOpKind::kFsync;
  f.proc = 0;
  f.file = 2;
  p.ops.push_back(f);
  StressOp m;
  m.kind = StressOpKind::kRename;
  m.proc = 1;
  m.file = 1;
  m.tag = 4;
  p.ops.push_back(m);
  return p;
}

TEST(StressProgram, JsonRoundTrip) {
  WorkloadProgram p = SampleProgram();
  WorkloadProgram back;
  ASSERT_TRUE(ProgramFromJson(ProgramToJson(p), &back));
  EXPECT_EQ(p, back);
}

TEST(StressProgram, FromJsonRejectsOutOfRangeIndices) {
  WorkloadProgram p = SampleProgram();
  p.ops[0].file = 7;  // >= num_files
  WorkloadProgram back;
  EXPECT_FALSE(ProgramFromJson(ProgramToJson(p), &back));
}

TEST(StressProgram, WithOpsKeepsSelection) {
  WorkloadProgram p = SampleProgram();
  WorkloadProgram sub = p.WithOps({0, 3});
  ASSERT_EQ(sub.ops.size(), 2u);
  EXPECT_EQ(sub.ops[0], p.ops[0]);
  EXPECT_EQ(sub.ops[1], p.ops[3]);
  EXPECT_EQ(sub.num_procs, p.num_procs);
  EXPECT_EQ(sub.priorities, p.priorities);
}

TEST(StressScenario, GeneratorIsDeterministic) {
  for (uint64_t seed : {1ull, 42ull, 31337ull}) {
    EXPECT_EQ(GenerateScenario(seed), GenerateScenario(seed));
  }
  EXPECT_NE(GenerateScenario(1).program.ops,
            GenerateScenario(2).program.ops);
}

TEST(StressScenario, GeneratorRespectsOptions) {
  GenOptions options;
  options.allow_cow = false;
  options.allow_mq = false;
  options.allow_faults = false;
  options.allow_crash = false;
  options.max_ops = 12;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Scenario s = GenerateScenario(seed, options);
    EXPECT_NE(s.stack.fs, StackConfig::FsKind::kCow);
    EXPECT_FALSE(s.stack.mq);
    EXPECT_FALSE(s.stack.transient_faults);
    EXPECT_FALSE(s.stack.crash);
    EXPECT_GE(static_cast<int>(s.program.ops.size()), options.min_ops);
    EXPECT_LE(static_cast<int>(s.program.ops.size()), options.max_ops);
    // Generated programs are always valid per the serializer's checks.
    WorkloadProgram back;
    EXPECT_TRUE(ProgramFromJson(ProgramToJson(s.program), &back));
  }
}

TEST(StressScenario, JsonRoundTrip) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Scenario s = GenerateScenario(seed);
    s.stack.control = NegativeControl::kDropCompletion;
    Scenario back;
    ASSERT_TRUE(ScenarioFromJson(ScenarioToJson(s), &back)) << seed;
    EXPECT_EQ(s, back) << seed;
  }
}

TEST(StressScenario, ReproJsonRoundTrip) {
  StressFailure f;
  f.seed = 99;
  f.oracle = "conservation";
  f.detail = "submitted=3 != completed=2 + merged=0";
  f.scenario = GenerateScenario(99);
  StressFailure back;
  ASSERT_TRUE(ReproFromJson(ReproToJson(f), &back));
  EXPECT_EQ(back.seed, f.seed);
  EXPECT_EQ(back.oracle, f.oracle);
  EXPECT_EQ(back.detail, f.detail);
  EXPECT_EQ(back.scenario, f.scenario);
}

// A hand-built scenario: the executor must report per-op results that match
// the documented determinism contract (write/read return len, fsync 0,
// renames owner-namespaced).
Scenario CraftedScenario() {
  Scenario s;
  s.seed = 7;
  s.stack.sched = SchedKind::kCfq;
  s.program.num_procs = 1;
  s.program.num_files = 2;
  s.program.priorities = {0};
  auto push = [&](StressOpKind kind, int file, uint64_t off, uint64_t len,
                  int tag) {
    StressOp op;
    op.kind = kind;
    op.proc = 0;
    op.file = file;
    op.offset = off;
    op.len = len;
    op.tag = tag;
    s.program.ops.push_back(op);
  };
  push(StressOpKind::kWrite, 0, 0, 10000, 0);
  push(StressOpKind::kRead, 0, 4096, 4096, 0);
  push(StressOpKind::kRead, 1, 0, 100, 0);  // hole read: zero-fill, len
  push(StressOpKind::kFsync, 0, 0, 0, 0);
  push(StressOpKind::kRename, 0, 0, 0, 1);  // "/f0" -> "/p0_r1"
  push(StressOpKind::kRename, 0, 0, 0, 1);  // same ino, same target: 0
  push(StressOpKind::kRename, 1, 0, 0, 1);  // target taken by file 0
  push(StressOpKind::kWrite, 0, 10000, 2000, 0);
  return s;
}

TEST(StressExecutor, CraftedScenarioResults) {
  ExecResult result = ExecuteScenario(CraftedScenario());
  ASSERT_TRUE(result.all_ops_completed);
  ASSERT_EQ(result.op_results.size(), 8u);
  EXPECT_EQ(result.op_results[0], 10000);
  EXPECT_EQ(result.op_results[1], 4096);
  EXPECT_EQ(result.op_results[2], 100);
  EXPECT_EQ(result.op_results[3], 0);
  EXPECT_EQ(result.op_results[4], 0);
  EXPECT_EQ(result.op_results[5], 0);
  EXPECT_EQ(result.op_results[6], -EEXIST);
  EXPECT_EQ(result.op_results[7], 2000);
  ASSERT_EQ(result.file_sizes.size(), 2u);
  EXPECT_EQ(result.file_sizes[0], 12000u);
  EXPECT_EQ(result.file_sizes[1], 0u);
  EXPECT_GT(result.submitted, 0u);
  EXPECT_EQ(result.submitted, result.completed + result.merged);
  EXPECT_EQ(result.inflight_at_end, 0);
  EXPECT_TRUE(result.elevator_empty);
  EXPECT_GT(result.pages_dirtied, 0u);
}

TEST(StressExecutor, TracedRunBuildsOneSpanPerRequest) {
  ExecOptions options;
  options.trace = true;
  ExecResult result = ExecuteScenario(CraftedScenario(), options);
  ASSERT_TRUE(result.traced);
  EXPECT_EQ(result.spans.size(), result.completed + result.merged);
}

TEST(StressExecutor, CowStackRunsPrograms) {
  Scenario s = CraftedScenario();
  s.stack.fs = StackConfig::FsKind::kCow;
  s.stack.sched = SchedKind::kSplitDeadline;
  ExecResult result = ExecuteScenario(s);
  EXPECT_TRUE(result.all_ops_completed);
  EXPECT_EQ(result.op_results[0], 10000);
  EXPECT_EQ(result.file_sizes[0], 12000u);
  EXPECT_EQ(result.submitted, result.completed + result.merged);
}

TEST(StressExecutor, ExecutionIsReproducible) {
  Scenario s = GenerateScenario(11);
  ExecResult a = ExecuteScenario(s);
  ExecResult b = ExecuteScenario(s);
  EXPECT_EQ(a.op_results, b.op_results);
  EXPECT_EQ(a.file_sizes, b.file_sizes);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.device_busy, b.device_busy);
  EXPECT_EQ(a.ops_done_at, b.ops_done_at);
}

}  // namespace
}  // namespace splitio
