// Tests for the workload generators.
#include <gtest/gtest.h>

#include <memory>

#include "src/block/noop.h"
#include "src/core/storage_stack.h"
#include "src/sim/simulator.h"
#include "src/workload/workloads.h"

namespace splitio {
namespace {

struct Harness {
  Harness() {
    StackConfig config;
    cpu = std::make_unique<CpuModel>(8);
    stack = std::make_unique<StorageStack>(config, cpu.get(), nullptr,
                                           std::make_unique<NoopElevator>());
    stack->Start();
  }
  std::unique_ptr<CpuModel> cpu;
  std::unique_ptr<StorageStack> stack;
};

TEST(Workloads, SequentialReaderWrapsAroundFile) {
  Simulator sim;
  Harness h;
  Process* p = h.stack->NewProcess("r");
  int64_t ino = h.stack->fs().CreatePreallocated("/f", 1 << 20);
  WorkloadStats stats;
  auto body = [&]() -> Task<void> {
    co_await SequentialReader(h.stack->kernel(), *p, ino, 1 << 20, 256 * 1024,
                              Sec(5), &stats);
  };
  sim.Spawn(body());
  sim.Run(Sec(5));
  // Wrapping re-reads hit the cache, so ops greatly exceed one pass.
  EXPECT_GT(stats.ops, 100u);
  EXPECT_EQ(stats.bytes, stats.ops * 256 * 1024);
}

TEST(Workloads, RandomReaderStaysInBounds) {
  Simulator sim;
  Harness h;
  Process* p = h.stack->NewProcess("r");
  int64_t ino = h.stack->fs().CreatePreallocated("/f", 16 << 20);
  WorkloadStats stats;
  auto body = [&]() -> Task<void> {
    co_await RandomReader(h.stack->kernel(), *p, ino, 16 << 20, 4096, 5,
                          Sec(2), &stats);
  };
  sim.Spawn(body());
  sim.Run(Sec(2));
  EXPECT_GT(stats.ops, 10u);
  // All reads were within the file: bytes read from device never exceed the
  // file size (no out-of-range I/O).
  EXPECT_LE(h.stack->device().total_bytes_read(), 16u << 20);
}

TEST(Workloads, AppendFsyncRecordsLatencies) {
  Simulator sim;
  Harness h;
  Process* p = h.stack->NewProcess("w");
  WorkloadStats stats;
  auto body = [&]() -> Task<void> {
    int64_t ino = co_await h.stack->kernel().Creat(*p, "/log");
    co_await AppendFsyncLoop(h.stack->kernel(), *p, ino, 4096, Sec(3),
                             &stats);
  };
  sim.Spawn(body());
  sim.Run(Sec(3));
  EXPECT_GT(stats.latency.count(), 10u);
  EXPECT_GT(stats.latency.Percentile(50), 0);
  // The file grew by one block per op (plus possibly one write whose fsync
  // the simulation cut off).
  uint64_t size = h.stack->fs().FileSize(h.stack->fs().Lookup("/log"));
  EXPECT_GE(size, stats.ops * 4096);
  EXPECT_LE(size, (stats.ops + 1) * 4096);
}

TEST(Workloads, BigWriteFsyncRespectsPause) {
  Simulator sim;
  Harness h;
  Process* p = h.stack->NewProcess("w");
  WorkloadStats stats;
  auto body = [&]() -> Task<void> {
    int64_t ino = co_await h.stack->kernel().Creat(*p, "/db");
    co_await h.stack->kernel().Write(*p, ino, 0, 4 << 20);
    co_await h.stack->kernel().Fsync(*p, ino);
    co_await BigWriteFsyncLoop(h.stack->kernel(), *p, ino, 4 << 20, 64 * 1024,
                               4096, Msec(200), 3, Sec(3), &stats);
  };
  sim.Spawn(body());
  sim.Run(Sec(3));
  EXPECT_GT(stats.ops, 2u);
  // With a 200 ms pause the loop cannot run more than ~15 rounds in 3 s.
  EXPECT_LT(stats.ops, 16u);
}

TEST(Workloads, CreateFsyncMakesDistinctFiles) {
  Simulator sim;
  Harness h;
  Process* p = h.stack->NewProcess("c");
  WorkloadStats stats;
  auto body = [&]() -> Task<void> {
    co_await CreateFsyncLoop(h.stack->kernel(), *p, "/dir", Msec(50), Sec(2),
                             &stats);
  };
  sim.Spawn(body());
  sim.Run(Sec(2));
  EXPECT_GT(stats.ops, 5u);
  EXPECT_GE(h.stack->fs().Lookup("/dir/f0"), 0);
  EXPECT_GE(h.stack->fs().Lookup("/dir/f1"), 0);
}

TEST(Workloads, MemReaderMostlyAvoidsDevice) {
  Simulator sim;
  Harness h;
  Process* p = h.stack->NewProcess("m");
  int64_t ino = h.stack->fs().CreatePreallocated("/m", 8 << 20);
  WorkloadStats stats;
  auto body = [&]() -> Task<void> {
    co_await MemReader(h.stack->kernel(), *p, ino, 8 << 20, 1 << 20, Sec(3),
                       &stats);
  };
  sim.Spawn(body());
  sim.Run(Sec(3));
  // One warm pass from disk; everything else from cache.
  EXPECT_EQ(h.stack->device().total_bytes_read(), 8u << 20);
  EXPECT_GT(stats.bytes, 100u << 20);
}

TEST(Workloads, SpinLoopConsumesCpuOnly) {
  Simulator sim;
  Harness h;
  auto body = [&]() -> Task<void> { co_await SpinLoop(*h.cpu, Sec(1)); };
  sim.Spawn(body());
  sim.Run(Sec(2));
  EXPECT_EQ(h.stack->device().total_bytes_read(), 0u);
  EXPECT_EQ(h.stack->device().total_bytes_written(), 0u);
}

// Property sweep: for any run size, RunSizeWorkload only touches offsets
// within the file and always makes progress.
class RunSizeSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RunSizeSweep, ProgressAndBounds) {
  Simulator sim;
  Harness h;
  Process* p = h.stack->NewProcess("b");
  int64_t ino = h.stack->fs().CreatePreallocated("/f", 64 << 20);
  WorkloadStats stats;
  auto body = [&]() -> Task<void> {
    co_await RunSizeWorkload(h.stack->kernel(), *p, ino, 64 << 20, GetParam(),
                             /*writes=*/false, 9, Sec(2), &stats);
  };
  sim.Spawn(body());
  sim.Run(Sec(2));
  EXPECT_GT(stats.ops, 0u);
  EXPECT_LE(h.stack->device().total_bytes_read(), 64u << 20);
}

INSTANTIATE_TEST_SUITE_P(AllRunSizes, RunSizeSweep,
                         ::testing::Values(4096, 16384, 65536, 262144,
                                           1048576, 4194304));

}  // namespace
}  // namespace splitio
