// Unit tests for the HDD and SSD device models.
#include <gtest/gtest.h>

#include "src/device/device.h"
#include "src/sim/simulator.h"

namespace splitio {
namespace {

Nanos RunOne(BlockDevice& dev, const DeviceRequest& req) {
  Simulator sim;
  Nanos service = -1;
  auto body = [&]() -> Task<void> {
    DeviceResult res = co_await dev.Execute(req);
    EXPECT_EQ(res.error, 0);
    service = res.service;
  };
  sim.Spawn(body());
  sim.Run();
  return service;
}

Nanos RunFlush(BlockDevice& dev) {
  Simulator sim;
  Nanos service = -1;
  auto body = [&]() -> Task<void> { service = co_await dev.Flush(); };
  sim.Spawn(body());
  sim.Run();
  return service;
}

TEST(HddModel, SequentialIsCheap) {
  HddModel hdd;
  // First request from sector 0 with head at 0: pure transfer.
  Nanos t = RunOne(hdd, {0, kPageSize, false});
  EXPECT_LT(t, Usec(100));
  // Next contiguous request: still cheap.
  Nanos t2 = RunOne(hdd, {kPageSize / kSectorSize, kPageSize, false});
  EXPECT_LT(t2, Usec(100));
}

TEST(HddModel, RandomPaysSeekAndRotation) {
  HddModel hdd;
  RunOne(hdd, {0, kPageSize, false});
  Nanos t = RunOne(hdd, {hdd.capacity_sectors() / 2, kPageSize, false});
  // Half-stroke seek + half rotation: several milliseconds.
  EXPECT_GT(t, Msec(5));
  EXPECT_LT(t, Msec(25));
}

TEST(HddModel, SeekGrowsWithDistance) {
  HddConfig config;
  HddModel hdd(config);
  DeviceRequest near{10000, kPageSize, false};
  DeviceRequest far{hdd.capacity_sectors() - 1000, kPageSize, false};
  Nanos cost_near = hdd.EstimateCost(near);
  Nanos cost_far = hdd.EstimateCost(far);
  EXPECT_LT(cost_near, cost_far);
}

TEST(HddModel, SequentialThroughputMatchesBandwidth) {
  HddModel hdd;
  Simulator sim;
  constexpr int kBlocks = 1000;
  auto body = [&]() -> Task<void> {
    for (int i = 0; i < kBlocks; ++i) {
      co_await hdd.Execute(
          {static_cast<uint64_t>(i) * (kPageSize / kSectorSize), kPageSize,
           true});
    }
  };
  sim.Spawn(body());
  sim.Run();
  double mbps = static_cast<double>(kBlocks) * kPageSize / 1e6 /
                ToSeconds(sim.Now());
  EXPECT_NEAR(mbps, 110.0, 5.0);
}

TEST(HddModel, TracksTraffic) {
  HddModel hdd;
  RunOne(hdd, {0, kPageSize, false});
  RunOne(hdd, {100, 2 * kPageSize, true});
  EXPECT_EQ(hdd.total_bytes_read(), kPageSize);
  EXPECT_EQ(hdd.total_bytes_written(), 2u * kPageSize);
  EXPECT_GT(hdd.busy_time(), 0);
}

TEST(SsdModel, RandomReadNearlySequentialRead) {
  SsdModel ssd;
  Nanos seq = ssd.EstimateCost({0, kPageSize, false});
  Nanos rand = ssd.EstimateCost({ssd.capacity_sectors() / 2, kPageSize, false});
  EXPECT_EQ(seq, rand);
}

TEST(SsdModel, MuchFasterThanHddForRandom) {
  SsdModel ssd;
  HddModel hdd;
  uint64_t target = ssd.capacity_sectors() / 2;
  EXPECT_LT(ssd.EstimateCost({target, kPageSize, false}) * 20,
            hdd.EstimateCost({target, kPageSize, false}));
}

TEST(SsdModel, RandomWritePenaltyApplies) {
  SsdModel ssd;
  Simulator sim;
  Nanos seq_time = 0;
  Nanos rand_time = 0;
  auto body = [&]() -> Task<void> {
    co_await ssd.Execute({0, kPageSize, true});
    seq_time =
        (co_await ssd.Execute({kPageSize / kSectorSize, kPageSize, true}))
            .service;
    rand_time = (co_await ssd.Execute({999999, kPageSize, true})).service;
  };
  sim.Spawn(body());
  sim.Run();
  EXPECT_GT(rand_time, seq_time);
}

// --- Persistence model: Flush() is the only durability barrier ---

void CheckFlushSemantics(BlockDevice& dev) {
  dev.set_volatile_cache(true);
  RunOne(dev, {0, kPageSize, true});
  RunOne(dev, {kPageSize / kSectorSize, 2 * kPageSize, true});
  // Written but not flushed: nothing durable yet.
  EXPECT_EQ(dev.last_write_seq(), 2u);
  EXPECT_EQ(dev.durable_seq(), 0u);
  ASSERT_EQ(dev.volatile_writes().size(), 2u);
  EXPECT_EQ(dev.volatile_writes()[0].seq, 1u);
  EXPECT_EQ(dev.volatile_writes()[1].bytes, 2u * kPageSize);
  // Flush makes all prior writes durable.
  RunFlush(dev);
  EXPECT_EQ(dev.durable_seq(), 2u);
  EXPECT_TRUE(dev.volatile_writes().empty());
  EXPECT_EQ(dev.flushes(), 1u);
  // A write after the flush is volatile again.
  RunOne(dev, {1000, kPageSize, true});
  EXPECT_EQ(dev.last_write_seq(), 3u);
  EXPECT_EQ(dev.durable_seq(), 2u);
  EXPECT_EQ(dev.volatile_writes().size(), 1u);
}

TEST(Persistence, HddWriteNotDurableUntilFlush) {
  HddModel hdd;
  CheckFlushSemantics(hdd);
}

TEST(Persistence, SsdWriteNotDurableUntilFlush) {
  SsdModel ssd;
  CheckFlushSemantics(ssd);
}

TEST(Persistence, CacheDisabledWritesAreImmediatelyDurable) {
  HddModel hdd;  // volatile cache off by default
  RunOne(hdd, {0, kPageSize, true});
  EXPECT_EQ(hdd.last_write_seq(), 1u);
  EXPECT_EQ(hdd.durable_seq(), 1u);
  EXPECT_TRUE(hdd.volatile_writes().empty());
}

TEST(Persistence, ReadsDoNotAffectDurability) {
  SsdModel ssd;
  ssd.set_volatile_cache(true);
  RunOne(ssd, {0, kPageSize, false});
  EXPECT_EQ(ssd.last_write_seq(), 0u);
  EXPECT_TRUE(ssd.volatile_writes().empty());
}

}  // namespace
}  // namespace splitio
