// Unit tests for the HDD and SSD device models.
#include <gtest/gtest.h>

#include "src/device/device.h"
#include "src/sim/simulator.h"

namespace splitio {
namespace {

Nanos RunOne(BlockDevice& dev, const DeviceRequest& req) {
  Simulator sim;
  Nanos service = -1;
  auto body = [&]() -> Task<void> { service = co_await dev.Execute(req); };
  sim.Spawn(body());
  sim.Run();
  return service;
}

TEST(HddModel, SequentialIsCheap) {
  HddModel hdd;
  // First request from sector 0 with head at 0: pure transfer.
  Nanos t = RunOne(hdd, {0, kPageSize, false});
  EXPECT_LT(t, Usec(100));
  // Next contiguous request: still cheap.
  Nanos t2 = RunOne(hdd, {kPageSize / kSectorSize, kPageSize, false});
  EXPECT_LT(t2, Usec(100));
}

TEST(HddModel, RandomPaysSeekAndRotation) {
  HddModel hdd;
  RunOne(hdd, {0, kPageSize, false});
  Nanos t = RunOne(hdd, {hdd.capacity_sectors() / 2, kPageSize, false});
  // Half-stroke seek + half rotation: several milliseconds.
  EXPECT_GT(t, Msec(5));
  EXPECT_LT(t, Msec(25));
}

TEST(HddModel, SeekGrowsWithDistance) {
  HddConfig config;
  HddModel hdd(config);
  DeviceRequest near{10000, kPageSize, false};
  DeviceRequest far{hdd.capacity_sectors() - 1000, kPageSize, false};
  Nanos cost_near = hdd.EstimateCost(near);
  Nanos cost_far = hdd.EstimateCost(far);
  EXPECT_LT(cost_near, cost_far);
}

TEST(HddModel, SequentialThroughputMatchesBandwidth) {
  HddModel hdd;
  Simulator sim;
  constexpr int kBlocks = 1000;
  auto body = [&]() -> Task<void> {
    for (int i = 0; i < kBlocks; ++i) {
      co_await hdd.Execute(
          {static_cast<uint64_t>(i) * (kPageSize / kSectorSize), kPageSize,
           true});
    }
  };
  sim.Spawn(body());
  sim.Run();
  double mbps = static_cast<double>(kBlocks) * kPageSize / 1e6 /
                ToSeconds(sim.Now());
  EXPECT_NEAR(mbps, 110.0, 5.0);
}

TEST(HddModel, TracksTraffic) {
  HddModel hdd;
  RunOne(hdd, {0, kPageSize, false});
  RunOne(hdd, {100, 2 * kPageSize, true});
  EXPECT_EQ(hdd.total_bytes_read(), kPageSize);
  EXPECT_EQ(hdd.total_bytes_written(), 2u * kPageSize);
  EXPECT_GT(hdd.busy_time(), 0);
}

TEST(SsdModel, RandomReadNearlySequentialRead) {
  SsdModel ssd;
  Nanos seq = ssd.EstimateCost({0, kPageSize, false});
  Nanos rand = ssd.EstimateCost({ssd.capacity_sectors() / 2, kPageSize, false});
  EXPECT_EQ(seq, rand);
}

TEST(SsdModel, MuchFasterThanHddForRandom) {
  SsdModel ssd;
  HddModel hdd;
  uint64_t target = ssd.capacity_sectors() / 2;
  EXPECT_LT(ssd.EstimateCost({target, kPageSize, false}) * 20,
            hdd.EstimateCost({target, kPageSize, false}));
}

TEST(SsdModel, RandomWritePenaltyApplies) {
  SsdModel ssd;
  Simulator sim;
  Nanos seq_time = 0;
  Nanos rand_time = 0;
  auto body = [&]() -> Task<void> {
    co_await ssd.Execute({0, kPageSize, true});
    seq_time = co_await ssd.Execute({kPageSize / kSectorSize, kPageSize, true});
    rand_time = co_await ssd.Execute({999999, kPageSize, true});
  };
  sim.Spawn(body());
  sim.Run();
  EXPECT_GT(rand_time, seq_time);
}

}  // namespace
}  // namespace splitio
