// Crash-consistency sweep: every scheduler (split and block-level) on ext4
// and XFS must preserve the ordered-mode invariants at randomized and
// adversarial crash points — and the checker must catch injected ordering
// bugs (skipped pre-record barrier; barriers disabled entirely).
#include <gtest/gtest.h>

#include "src/fault/crash_sweep.h"

namespace splitio {
namespace {

using Sched = CrashSweepOptions::Sched;

CrashSweepOptions Base(Sched sched, bool xfs) {
  CrashSweepOptions options;
  options.sched = sched;
  options.xfs = xfs;
  options.horizon = Sec(5);
  options.crash_points = 5;
  options.record_crash_points = 12;
  options.seed = 1;
  return options;
}

void ExpectClean(const CrashSweepOptions& options) {
  CrashSweepResult result = RunCrashSweep(options);
  SCOPED_TRACE(std::string(CrashSweepSchedName(options.sched)) +
               (options.xfs ? "/xfs" : "/ext4"));
  EXPECT_GT(result.crash_points, 0u);
  EXPECT_GT(result.wal_acked_ok, 0u);
  EXPECT_GT(result.checked_acks, 0u);
  EXPECT_GT(result.device_flushes, 0u);
  if (!options.xfs) {
    EXPECT_GT(result.replayed_commits, 0u);
  }
  EXPECT_TRUE(result.ok()) << result.FirstViolation();
}

TEST(CrashSweep, SplitTokenExt4) { ExpectClean(Base(Sched::kSplitToken, false)); }
TEST(CrashSweep, SplitTokenXfs) { ExpectClean(Base(Sched::kSplitToken, true)); }
TEST(CrashSweep, SplitDeadlineExt4) {
  ExpectClean(Base(Sched::kSplitDeadline, false));
}
TEST(CrashSweep, SplitDeadlineXfs) {
  ExpectClean(Base(Sched::kSplitDeadline, true));
}
TEST(CrashSweep, AfqExt4) { ExpectClean(Base(Sched::kAfq, false)); }
TEST(CrashSweep, AfqXfs) { ExpectClean(Base(Sched::kAfq, true)); }
TEST(CrashSweep, NoopExt4) { ExpectClean(Base(Sched::kNoop, false)); }
TEST(CrashSweep, NoopXfs) { ExpectClean(Base(Sched::kNoop, true)); }
TEST(CrashSweep, CfqExt4) { ExpectClean(Base(Sched::kCfq, false)); }
TEST(CrashSweep, CfqXfs) { ExpectClean(Base(Sched::kCfq, true)); }
TEST(CrashSweep, BlockDeadlineExt4) {
  ExpectClean(Base(Sched::kBlockDeadline, false));
}
TEST(CrashSweep, BlockDeadlineXfs) {
  ExpectClean(Base(Sched::kBlockDeadline, true));
}

TEST(CrashSweep, SplitDeadlineExt4Ssd) {
  CrashSweepOptions options = Base(Sched::kSplitDeadline, false);
  options.ssd = true;
  ExpectClean(options);
}

// blk-mq topologies: with several hardware contexts and a deep device
// command queue, writes complete out of dispatch order — the flush barrier
// must still give jbd2 (ext4) and XFS their ordering points.
CrashSweepOptions WithMq(CrashSweepOptions options, int hw, int depth) {
  options.mq_hw_queues = hw;
  options.mq_queue_depth = depth;
  return options;
}

TEST(CrashSweep, MqSplitTokenExt4Ssd) {
  CrashSweepOptions options = WithMq(Base(Sched::kSplitToken, false), 2, 4);
  options.ssd = true;
  ExpectClean(options);
}

TEST(CrashSweep, MqSplitTokenXfs) {
  ExpectClean(WithMq(Base(Sched::kSplitToken, true), 2, 4));
}

TEST(CrashSweep, MqSplitDeadlineExt4) {
  ExpectClean(WithMq(Base(Sched::kSplitDeadline, false), 4, 8));
}

TEST(CrashSweep, MqSplitDeadlineXfsHddNcq) {
  // HDD with NCQ-style shortest-positioning selection under XFS.
  ExpectClean(WithMq(Base(Sched::kSplitDeadline, true), 2, 8));
}

TEST(CrashSweep, MqCfqExt4QueueDepth) {
  // Single-queue elevator: collapses to one hardware context, but the
  // device command queue still runs at depth 4.
  ExpectClean(WithMq(Base(Sched::kCfq, false), 2, 4));
}

// Transient EIO + latency spikes running alongside crash exploration: failed
// fsyncs promise nothing, successful ones must still hold.
TEST(CrashSweep, ConsistentUnderTransientFaults) {
  CrashSweepOptions options = Base(Sched::kSplitToken, false);
  options.inject_faults = true;
  CrashSweepResult result = RunCrashSweep(options);
  EXPECT_GT(result.faults_injected, 0u);
  EXPECT_TRUE(result.ok()) << result.FirstViolation();
}

// Injected jbd2 ordering bug: commit record written without the pre-record
// flush. The adversarial record-completion crash points must expose a
// committed transaction whose ordered data never reached media.
TEST(CrashSweep, MissingPreflushBarrierIsCaught) {
  CrashSweepOptions options = Base(Sched::kSplitDeadline, false);
  options.horizon = Sec(8);
  options.record_crash_points = 32;
  options.buggy_skip_preflush = true;
  CrashSweepResult result = RunCrashSweep(options);
  EXPECT_GT(result.total_violations, 0u);
}

// No barriers at all with a volatile write cache: fsync acknowledgments are
// hollow and the checker must say so, on both file systems.
TEST(CrashSweep, DisabledBarriersAreCaughtExt4) {
  CrashSweepOptions options = Base(Sched::kSplitToken, false);
  options.durability_barriers = false;
  EXPECT_GT(RunCrashSweep(options).total_violations, 0u);
}

TEST(CrashSweep, DisabledBarriersAreCaughtXfs) {
  CrashSweepOptions options = Base(Sched::kAfq, true);
  options.durability_barriers = false;
  EXPECT_GT(RunCrashSweep(options).total_violations, 0u);
}

// Same options + same seed => bit-identical sweep statistics.
TEST(CrashSweep, DeterministicForSeed) {
  CrashSweepOptions options = Base(Sched::kSplitToken, false);
  options.inject_faults = true;
  CrashSweepResult a = RunCrashSweep(options);
  CrashSweepResult b = RunCrashSweep(options);
  EXPECT_EQ(a.crash_points, b.crash_points);
  EXPECT_EQ(a.total_violations, b.total_violations);
  EXPECT_EQ(a.replayed_commits, b.replayed_commits);
  EXPECT_EQ(a.checked_commits, b.checked_commits);
  EXPECT_EQ(a.checked_acks, b.checked_acks);
  EXPECT_EQ(a.wal_acked_ok, b.wal_acked_ok);
  EXPECT_EQ(a.fsync_errors, b.fsync_errors);
  EXPECT_EQ(a.device_flushes, b.device_flushes);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
}

}  // namespace
}  // namespace splitio
