// File-system tests: delayed allocation, writeback proxying, ext4 ordered
// journaling (transaction entanglement), XFS logical logging, fsync
// semantics.
#include <gtest/gtest.h>

#include <memory>

#include "src/block/block_layer.h"
#include "src/block/noop.h"
#include "src/core/storage_stack.h"
#include "src/fs/ext4.h"
#include "src/fs/xfs.h"
#include "src/sim/simulator.h"

namespace splitio {
namespace {

// Minimal harness: HDD + noop elevator + ext4 or XFS.
struct Harness {
  explicit Harness(StackConfig::FsKind fs_kind = StackConfig::FsKind::kExt4,
                   bool writeback_daemon = true) {
    StackConfig config;
    config.fs = fs_kind;
    config.cache.writeback_daemon = writeback_daemon;
    cpu = std::make_unique<CpuModel>(8);
    stack = std::make_unique<StorageStack>(config, cpu.get(), nullptr,
                                           std::make_unique<NoopElevator>());
    stack->Start();
  }
  std::unique_ptr<CpuModel> cpu;
  std::unique_ptr<StorageStack> stack;
};

TEST(FsBase, CreateAndLookup) {
  Simulator sim;
  Harness h;
  Process* p = h.stack->NewProcess("app");
  int64_t ino = -1;
  auto body = [&]() -> Task<void> {
    ino = co_await h.stack->kernel().Creat(*p, "/a");
    EXPECT_EQ(h.stack->fs().Lookup("/a"), ino);
    EXPECT_EQ(h.stack->fs().Lookup("/missing"), -1);
    int64_t again = co_await h.stack->kernel().Creat(*p, "/a");
    EXPECT_EQ(again, ino);
  };
  sim.Spawn(body());
  sim.Run(Sec(2));
  EXPECT_GE(ino, 2);
}

TEST(FsBase, WriteBuffersWithoutDeviceIo) {
  Simulator sim;
  Harness h;
  Process* p = h.stack->NewProcess("app");
  auto body = [&]() -> Task<void> {
    int64_t ino = co_await h.stack->kernel().Creat(*p, "/f");
    co_await h.stack->kernel().Write(*p, ino, 0, 64 * kPageSize);
    EXPECT_EQ(h.stack->cache().dirty_pages(), 64u);
    EXPECT_EQ(h.stack->device().total_bytes_written(), 0u);
    EXPECT_EQ(h.stack->fs().FileSize(ino), 64u * kPageSize);
  };
  sim.Spawn(body());
  sim.Run(Sec(1));
}

TEST(FsBase, FsyncFlushesDataToDevice) {
  Simulator sim;
  Harness h;
  Process* p = h.stack->NewProcess("app");
  auto body = [&]() -> Task<void> {
    int64_t ino = co_await h.stack->kernel().Creat(*p, "/f");
    co_await h.stack->kernel().Write(*p, ino, 0, 64 * kPageSize);
    co_await h.stack->kernel().Fsync(*p, ino);
    EXPECT_EQ(h.stack->cache().dirty_pages(), 0u);
    // Data + journal record reached the device.
    EXPECT_GE(h.stack->device().total_bytes_written(), 64u * kPageSize);
  };
  sim.Spawn(body());
  sim.Run(Sec(5));
}

TEST(FsBase, ReadBackAfterFlushHitsDeviceThenCache) {
  Simulator sim;
  Harness h;
  Process* p = h.stack->NewProcess("app");
  auto body = [&]() -> Task<void> {
    int64_t ino = h.stack->fs().CreatePreallocated("/data", 1 << 20);
    uint64_t before = h.stack->device().total_bytes_read();
    co_await h.stack->kernel().Read(*p, ino, 0, 1 << 20);
    EXPECT_EQ(h.stack->device().total_bytes_read() - before, 1u << 20);
    // Second read: served from cache.
    before = h.stack->device().total_bytes_read();
    co_await h.stack->kernel().Read(*p, ino, 0, 1 << 20);
    EXPECT_EQ(h.stack->device().total_bytes_read() - before, 0u);
  };
  sim.Spawn(body());
  sim.Run(Sec(5));
}

TEST(FsBase, HoleReadsCostNoIo) {
  Simulator sim;
  Harness h;
  Process* p = h.stack->NewProcess("app");
  auto body = [&]() -> Task<void> {
    int64_t ino = co_await h.stack->kernel().Creat(*p, "/sparse");
    co_await h.stack->kernel().Read(*p, ino, 0, 16 * kPageSize);
    EXPECT_EQ(h.stack->device().total_bytes_read(), 0u);
  };
  sim.Spawn(body());
  sim.Run(Sec(1));
}

TEST(FsBase, WritebackDaemonFlushesExpiredDirtyData) {
  Simulator sim;
  Harness h;
  Process* p = h.stack->NewProcess("app");
  auto body = [&]() -> Task<void> {
    int64_t ino = co_await h.stack->kernel().Creat(*p, "/f");
    co_await h.stack->kernel().Write(*p, ino, 0, 32 * kPageSize);
  };
  sim.Spawn(body());
  // dirty_expire (30 s) + writeback interval: data flushed without fsync.
  sim.Run(Sec(40));
  EXPECT_EQ(h.stack->cache().dirty_pages(), 0u);
  EXPECT_GE(h.stack->device().total_bytes_written(), 32u * kPageSize);
}

TEST(FsBase, WritebackSubmitterIsProxyWithRealCauses) {
  Simulator sim;
  Harness h;
  Process* p = h.stack->NewProcess("app");
  // Observe requests arriving at the block layer.
  std::vector<CauseSet> write_causes;
  std::vector<int32_t> submitter_pids;
  h.stack->block().set_completion_hook([&](const BlockRequest& req) {
    if (req.is_write && !req.is_journal) {
      write_causes.push_back(req.causes);
      submitter_pids.push_back(req.submitter->pid());
    }
  });
  auto body = [&]() -> Task<void> {
    int64_t ino = co_await h.stack->kernel().Creat(*p, "/f");
    co_await h.stack->kernel().Write(*p, ino, 0, 32 * kPageSize);
  };
  sim.Spawn(body());
  sim.Run(Sec(40));
  ASSERT_FALSE(write_causes.empty());
  // Every write (data writeback and metadata checkpoint alike) is tagged
  // with the app as its cause, never with a kernel task; at least one was
  // submitted by the writeback proxy.
  bool saw_writeback_submission = false;
  for (size_t i = 0; i < write_causes.size(); ++i) {
    EXPECT_TRUE(write_causes[i].Contains(p->pid())) << i;
    EXPECT_FALSE(write_causes[i].Contains(h.stack->writeback_task().pid()));
    if (submitter_pids[i] == h.stack->writeback_task().pid()) {
      saw_writeback_submission = true;
    }
  }
  EXPECT_TRUE(saw_writeback_submission);
}

TEST(FsBase, ContiguousDirtyPagesMergeIntoLargeRequests) {
  Simulator sim;
  Harness h;
  Process* p = h.stack->NewProcess("app");
  uint64_t write_reqs = 0;
  uint64_t write_bytes = 0;
  h.stack->block().set_completion_hook([&](const BlockRequest& req) {
    if (req.is_write && !req.is_journal) {
      ++write_reqs;
      write_bytes += req.bytes;
    }
  });
  auto body = [&]() -> Task<void> {
    int64_t ino = co_await h.stack->kernel().Creat(*p, "/f");
    co_await h.stack->kernel().Write(*p, ino, 0, 512 * kPageSize);  // 2 MB
    co_await h.stack->kernel().Fsync(*p, ino);
  };
  sim.Spawn(body());
  sim.Run(Sec(5));
  EXPECT_EQ(write_bytes, 512u * kPageSize);
  // 2 MB in >=1 MB chunks: 2-3 requests, not 512.
  EXPECT_LE(write_reqs, 4u);
}

TEST(FsBase, UnlinkDropsDirtyPages) {
  Simulator sim;
  Harness h(StackConfig::FsKind::kExt4, /*writeback_daemon=*/false);
  Process* p = h.stack->NewProcess("app");
  auto body = [&]() -> Task<void> {
    int64_t ino = co_await h.stack->kernel().Creat(*p, "/f");
    co_await h.stack->kernel().Write(*p, ino, 0, 16 * kPageSize);
    EXPECT_EQ(h.stack->cache().dirty_pages(), 16u);
    co_await h.stack->kernel().Unlink(*p, ino);
    EXPECT_EQ(h.stack->cache().dirty_pages(), 0u);
    EXPECT_EQ(h.stack->fs().Lookup("/f"), -1);
  };
  sim.Spawn(body());
  sim.Run(Sec(1));
  EXPECT_EQ(h.stack->device().total_bytes_written(), 0u);  // never flushed
}

// The core ext4 phenomenon (Figure 5): an fsync of a tiny file is delayed by
// another process's large buffered data once both join the same transaction.
TEST(Ext4, FsyncEntangledWithOtherProcessesData) {
  Nanos small_alone;
  {
    Simulator sim;
    Harness h;
    Process* a = h.stack->NewProcess("A");
    Nanos latency = 0;
    auto body = [&]() -> Task<void> {
      int64_t ino = co_await h.stack->kernel().Creat(*a, "/a");
      co_await h.stack->kernel().Write(*a, ino, 0, kPageSize);
      Nanos start = Simulator::current().Now();
      co_await h.stack->kernel().Fsync(*a, ino);
      latency = Simulator::current().Now() - start;
    };
    sim.Spawn(body());
    sim.Run(Sec(5));
    small_alone = latency;
    ASSERT_GT(small_alone, 0);
  }
  Nanos small_entangled;
  {
    Simulator sim;
    Harness h;
    Process* a = h.stack->NewProcess("A");
    Process* b = h.stack->NewProcess("B");
    Nanos latency = 0;
    auto big_writer = [&]() -> Task<void> {
      int64_t ino = co_await h.stack->kernel().Creat(*b, "/b");
      // 16 MB buffered, then fsync: B's flush + commit is in flight when A
      // fsyncs.
      co_await h.stack->kernel().Write(*b, ino, 0, 4096 * kPageSize);
      co_await h.stack->kernel().Fsync(*b, ino);
    };
    auto small_writer = [&]() -> Task<void> {
      int64_t ino = co_await h.stack->kernel().Creat(*a, "/a");
      co_await Delay(Msec(5));  // let B's fsync start first
      co_await h.stack->kernel().Write(*a, ino, 0, kPageSize);
      Nanos start = Simulator::current().Now();
      co_await h.stack->kernel().Fsync(*a, ino);
      latency = Simulator::current().Now() - start;
    };
    sim.Spawn(big_writer());
    sim.Spawn(small_writer());
    sim.Run(Sec(10));
    small_entangled = latency;
    ASSERT_GT(small_entangled, 0);
  }
  // A's fsync is at least an order of magnitude slower when entangled.
  EXPECT_GT(small_entangled, 5 * small_alone);
}

TEST(Ext4, JournalCommitTagsCarryAllCauses) {
  Simulator sim;
  Harness h;
  Process* a = h.stack->NewProcess("A");
  Process* b = h.stack->NewProcess("B");
  std::vector<CauseSet> journal_causes;
  h.stack->block().set_completion_hook([&](const BlockRequest& req) {
    if (req.is_journal) {
      journal_causes.push_back(req.causes);
    }
  });
  auto writer = [&](Process* p, const char* path) -> Task<void> {
    int64_t ino = co_await h.stack->kernel().Creat(*p, path);
    co_await h.stack->kernel().Write(*p, ino, 0, kPageSize);
    co_await h.stack->kernel().Fsync(*p, ino);
  };
  auto body = [&]() -> Task<void> {
    // Both writers dirty metadata in the same transaction window.
    int64_t ia = co_await h.stack->kernel().Creat(*a, "/a");
    int64_t ib = co_await h.stack->kernel().Creat(*b, "/b");
    co_await h.stack->kernel().Write(*a, ia, 0, kPageSize);
    co_await h.stack->kernel().Write(*b, ib, 0, kPageSize);
    co_await h.stack->kernel().Fsync(*a, ia);
  };
  (void)writer;
  sim.Spawn(body());
  sim.Run(Sec(5));
  ASSERT_FALSE(journal_causes.empty());
  EXPECT_TRUE(journal_causes[0].Contains(a->pid()));
  EXPECT_TRUE(journal_causes[0].Contains(b->pid()));
}

TEST(Ext4, PeriodicCommitHappensWithoutFsync) {
  Simulator sim;
  Harness h;
  Process* p = h.stack->NewProcess("app");
  auto body = [&]() -> Task<void> {
    int64_t ino = co_await h.stack->kernel().Creat(*p, "/f");
    (void)ino;
  };
  sim.Spawn(body());
  sim.Run(Sec(12));
  EXPECT_GE(h.stack->ext4()->journal().commits_done(), 1u);
}

TEST(Xfs, FsyncDoesNotDragOtherFilesData) {
  Simulator sim;
  Harness h(StackConfig::FsKind::kXfs);
  Process* a = h.stack->NewProcess("A");
  Process* b = h.stack->NewProcess("B");
  Nanos latency = 0;
  auto big_writer = [&]() -> Task<void> {
    int64_t ino = co_await h.stack->kernel().Creat(*b, "/b");
    co_await h.stack->kernel().Write(*b, ino, 0, 4096 * kPageSize);  // 16 MB
    // No fsync: B's data stays buffered.
  };
  auto small_writer = [&]() -> Task<void> {
    int64_t ino = co_await h.stack->kernel().Creat(*a, "/a");
    co_await Delay(Msec(5));
    co_await h.stack->kernel().Write(*a, ino, 0, kPageSize);
    Nanos start = Simulator::current().Now();
    co_await h.stack->kernel().Fsync(*a, ino);
    latency = Simulator::current().Now() - start;
  };
  sim.Spawn(big_writer());
  sim.Spawn(small_writer());
  sim.Run(Sec(10));
  // XFS log force writes only metadata; B's 16 MB stays out of A's path.
  EXPECT_GT(latency, 0);
  EXPECT_LT(latency, Msec(200));
}

TEST(Xfs, PartialIntegrationAttributesLogToLogTask) {
  Simulator sim;
  Harness h(StackConfig::FsKind::kXfs);
  Process* b = h.stack->NewProcess("B");
  std::vector<CauseSet> log_causes;
  h.stack->block().set_completion_hook([&](const BlockRequest& req) {
    if (req.is_journal) {
      log_causes.push_back(req.causes);
    }
  });
  auto body = [&]() -> Task<void> {
    int64_t ino = co_await h.stack->kernel().Creat(*b, "/f");
    co_await h.stack->kernel().Fsync(*b, ino);
  };
  sim.Spawn(body());
  sim.Run(Sec(5));
  ASSERT_FALSE(log_causes.empty());
  // Partial integration: the log write is NOT attributed to B.
  EXPECT_FALSE(log_causes[0].Contains(b->pid()));
}

TEST(Xfs, FullIntegrationAttributesLogToRealCauses) {
  Simulator sim;
  StackConfig config;
  config.fs = StackConfig::FsKind::kXfs;
  config.xfs_full_integration = true;
  CpuModel cpu(8);
  StorageStack stack(config, &cpu, nullptr, std::make_unique<NoopElevator>());
  stack.Start();
  Process* b = stack.NewProcess("B");
  std::vector<CauseSet> log_causes;
  stack.block().set_completion_hook([&](const BlockRequest& req) {
    if (req.is_journal) {
      log_causes.push_back(req.causes);
    }
  });
  auto body = [&]() -> Task<void> {
    int64_t ino = co_await stack.kernel().Creat(*b, "/f");
    co_await stack.kernel().Fsync(*b, ino);
  };
  sim.Spawn(body());
  sim.Run(Sec(5));
  ASSERT_FALSE(log_causes.empty());
  EXPECT_TRUE(log_causes[0].Contains(b->pid()));
}

TEST(Allocator, FilesWrittenAloneAreSequential) {
  Inode inode;
  ExtentAllocator alloc(1000, 2048);
  uint64_t prev = alloc.AllocatePage(inode, 0);
  for (uint64_t i = 1; i < 100; ++i) {
    uint64_t s = alloc.AllocatePage(inode, i);
    EXPECT_EQ(s, prev + kPageSize / kSectorSize);
    prev = s;
  }
}

TEST(Allocator, InterleavedFilesGetDistinctChunks) {
  Inode f1;
  Inode f2;
  ExtentAllocator alloc(0, 16);
  uint64_t a0 = alloc.AllocatePage(f1, 0);
  uint64_t b0 = alloc.AllocatePage(f2, 0);
  EXPECT_NE(a0, b0);
  // Second chunk of f1 lands after f2's chunk: interleaving fragments.
  uint64_t a_chunk2 = alloc.AllocatePage(f1, 16);
  EXPECT_GT(a_chunk2, b0);
}

}  // namespace
}  // namespace splitio
