# BENCHJSON baseline pin: runs a bench binary (untraced, default seed) and
# requires its BENCHJSON line to match the committed expectation byte for
# byte. This is the repo's contract that instrumentation changes (tracing
# hooks, new counters, per-stack scopes) never drift the deterministic
# figure benches: any intentional change must update the committed file in
# tests/benchjson_baseline/ in the same commit that causes it.
# Invoked by ctest; pass -DBENCH=<path-to-binary> -DBASELINE=<expected file>.
if(NOT DEFINED BENCH)
  message(FATAL_ERROR "pass -DBENCH=<path to a bench binary>")
endif()
if(NOT DEFINED BASELINE)
  message(FATAL_ERROR "pass -DBASELINE=<path to expected BENCHJSON line>")
endif()
if(NOT EXISTS ${BASELINE})
  message(FATAL_ERROR "baseline file missing: ${BASELINE}")
endif()

# detect_leaks=0: see check_determinism.cmake.
execute_process(COMMAND ${CMAKE_COMMAND} -E env ASAN_OPTIONS=detect_leaks=0
                ${BENCH}
                OUTPUT_VARIABLE out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench exited nonzero: ${rc}")
endif()

string(REGEX MATCH "BENCHJSON [^\n]*" actual "${out}")
if(actual STREQUAL "")
  message(FATAL_ERROR "no BENCHJSON line in bench output")
endif()

file(READ ${BASELINE} expected)
string(STRIP "${expected}" expected)
if(NOT actual STREQUAL expected)
  message(FATAL_ERROR "BENCHJSON drifted from committed baseline.\n"
          "expected: ${expected}\n"
          "actual:   ${actual}\n"
          "If the change is intentional, refresh ${BASELINE}.")
endif()
message(STATUS "BENCHJSON matches committed baseline")
