// Tests for the cross-layer tracing subsystem (src/obs): event emission,
// span assembly with hand-computable residencies, the summary metrics, and
// the JSONL exporters.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/block/block_layer.h"
#include "src/block/noop.h"
#include "src/core/storage_stack.h"
#include "src/device/device.h"
#include "src/obs/span.h"
#include "src/obs/trace_sink.h"
#include "src/sim/simulator.h"

namespace splitio {
namespace {

#ifndef SPLITIO_DISABLE_TRACING

TEST(TraceSink, ActiveOnlyWhileAttached) {
  EXPECT_FALSE(obs::TracingActive());
  {
    obs::TraceSink sink;
    EXPECT_FALSE(obs::TracingActive());  // construction does not attach
    sink.Attach();
    EXPECT_TRUE(obs::TracingActive());
    sink.Attach();  // idempotent
    EXPECT_TRUE(obs::TracingActive());
    sink.Detach();
    EXPECT_FALSE(obs::TracingActive());
    sink.Attach();
    // Destructor detaches.
  }
  EXPECT_FALSE(obs::TracingActive());
}

// Two 4 KB writes to far-apart sectors submitted at the same instant
// through a FIFO elevator and a serial device: the first is dispatched
// immediately (zero elevator residency) and the second waits in the
// elevator exactly as long as the first occupies the device. Every
// residency in this scenario is hand-computable from the span timestamps.
TEST(SpanBuilder, TwoWritesHandComputableResidency) {
  obs::TraceSink sink;
  sink.Attach();
  Simulator sim;
  HddModel hdd;
  NoopElevator noop;
  BlockLayer block(&hdd, &noop);
  block.Start();
  // Cost of the first write, estimated before any I/O moves the head: the
  // device services it from the same initial state.
  const Nanos expected_first = hdd.EstimateCost(
      DeviceRequest{/*sector=*/0, /*bytes=*/kPageSize, /*is_write=*/true});
  auto submit = [&](uint64_t sector) -> Task<void> {
    auto req = std::make_shared<BlockRequest>();
    req->sector = sector;
    req->bytes = kPageSize;
    req->is_write = true;
    co_await block.SubmitAndWait(req);
  };
  sim.Spawn(submit(0));
  sim.Spawn(submit(1 << 20));  // far away: no merge with the first
  sim.Run(Sec(1));

  auto spans = obs::BuildSpans(sink.events());
  ASSERT_EQ(spans.size(), 2u);
  const obs::RequestSpan& s1 = spans[0];
  const obs::RequestSpan& s2 = spans[1];
  EXPECT_LT(s1.id, s2.id);
  EXPECT_EQ(s1.sector, 0u);
  EXPECT_EQ(s2.sector, 1u << 20);

  // Both entered the elevator at t=0; the first went straight to the
  // device.
  EXPECT_EQ(s1.added, 0);
  EXPECT_EQ(s2.added, 0);
  EXPECT_EQ(s1.in_elevator(), 0);
  EXPECT_EQ(s1.dev_start, s1.dispatched);
  EXPECT_EQ(s1.on_device(), s1.dev_done - s1.dev_start);
  EXPECT_EQ(s1.on_device(), expected_first);
  EXPECT_EQ(s1.service, expected_first);
  EXPECT_EQ(s1.completed, s1.dev_done);
  EXPECT_EQ(s1.total(), s1.on_device());

  // The second was released the instant the first completed, so its
  // elevator residency equals the first's device occupancy.
  EXPECT_EQ(s2.dispatched, s1.completed);
  EXPECT_EQ(s2.in_elevator(), s1.on_device());
  EXPECT_GT(s2.on_device(), 0);
  EXPECT_EQ(s2.total(), s2.in_elevator() + s2.on_device());

  // Neither write was buffered or journaled: those layers read as zero.
  for (const obs::RequestSpan* s : {&s1, &s2}) {
    EXPECT_EQ(s->in_cache(), 0);
    EXPECT_EQ(s->in_journal(), 0);
    EXPECT_EQ(s->in_swq(), 0);
    EXPECT_EQ(s->result, 0);
  }
}

// Full ext4 stack: buffered write + fsync. Every completed request gets a
// span; data-write spans carry the dirtier in their cause set and a cache
// residency; the journal-record span has a journal residency.
TEST(SpanBuilder, Ext4FsyncAttributesLayers) {
  obs::TraceSink sink;
  sink.Attach();
  obs::ScopedTraceLabel label("obs-test");
  Simulator sim;
  StackConfig config;
  CpuModel cpu(8);
  StorageStack stack(config, &cpu, nullptr, std::make_unique<NoopElevator>());
  stack.Start();
  Process* p = stack.NewProcess("app");
  auto body = [&]() -> Task<void> {
    int64_t ino = co_await stack.kernel().Creat(*p, "/f");
    co_await stack.kernel().Write(*p, ino, 0, 8 * kPageSize);
    co_await stack.kernel().Fsync(*p, ino);
  };
  sim.Spawn(body());
  sim.Run(Sec(5));

  auto spans = obs::BuildSpans(sink.events());
  ASSERT_FALSE(spans.empty());
  bool saw_data_write = false;
  bool saw_journal = false;
  for (const obs::RequestSpan& s : spans) {
    EXPECT_GT(s.completed, 0);
    EXPECT_GE(s.total(), 0);
    EXPECT_EQ(obs::LabelName(s.label), "obs-test");
    if (s.flags & obs::kFlagJournal) {
      saw_journal = true;
      // The journal record's transaction was joined before the record hit
      // the elevator.
      EXPECT_GT(s.journal_tid, 0u);
      EXPECT_GT(s.txn_joined, 0);
      EXPECT_GT(s.in_journal(), 0);
    } else if (s.flags & obs::kFlagWrite) {
      saw_data_write = true;
      ASSERT_EQ(s.causes.size(), 1u);
      EXPECT_EQ(s.causes[0], p->pid());
      // The pages were dirtied before writeback submitted them.
      EXPECT_GT(s.cache_entered, 0);
      EXPECT_GT(s.in_cache(), 0);
    }
  }
  EXPECT_TRUE(saw_data_write);
  EXPECT_TRUE(saw_journal);

  // Raw syscall events bracket the whole run.
  bool saw_enter = false;
  bool saw_exit = false;
  for (const obs::TraceEvent& e : sink.events()) {
    saw_enter = saw_enter || e.type == obs::EventType::kSyscallEnter;
    saw_exit = saw_exit || e.type == obs::EventType::kSyscallExit;
  }
  EXPECT_TRUE(saw_enter);
  EXPECT_TRUE(saw_exit);
}

// A second, untraced run of the identical workload must produce the same
// schedule: tracing observes, never perturbs.
TEST(TraceSink, TracingDoesNotPerturbSchedule) {
  auto run = [](bool traced) {
    obs::TraceSink sink;
    if (traced) {
      sink.Attach();
    }
    Simulator sim;
    StackConfig config;
    CpuModel cpu(8);
    StorageStack stack(config, &cpu, nullptr,
                       std::make_unique<NoopElevator>());
    stack.Start();
    Process* p = stack.NewProcess("app");
    Nanos fsync_done = 0;
    auto body = [&]() -> Task<void> {
      int64_t ino = co_await stack.kernel().Creat(*p, "/f");
      co_await stack.kernel().Write(*p, ino, 0, 32 * kPageSize);
      co_await stack.kernel().Fsync(*p, ino);
      fsync_done = Simulator::current().Now();
    };
    sim.Spawn(body());
    sim.Run(Sec(5));
    return fsync_done;
  };
  Nanos traced = run(true);
  Nanos untraced = run(false);
  EXPECT_GT(traced, 0);
  EXPECT_EQ(traced, untraced);
}

#endif  // SPLITIO_DISABLE_TRACING

// The remaining tests drive the span utilities on synthetic data, so they
// hold even in a SPLITIO_DISABLE_TRACING build.

obs::RequestSpan MakeSpan(uint64_t id, Nanos added, Nanos dispatched,
                          Nanos done) {
  obs::RequestSpan s;
  s.id = id;
  s.bytes = kPageSize;
  s.flags = obs::kFlagWrite;
  s.added = added;
  s.dispatched = dispatched;
  s.dev_start = dispatched;
  s.dev_done = done;
  s.completed = done;
  s.service = done - dispatched;
  return s;
}

TEST(SummarizeSpans, EmitsLayerAndCauseMetrics) {
  std::vector<obs::RequestSpan> spans;
  spans.push_back(MakeSpan(1, 0, Msec(2), Msec(5)));
  spans.back().causes = {7};
  spans.push_back(MakeSpan(2, 0, Msec(4), Msec(9)));
  spans.back().causes = {7, 9};
  auto metrics = obs::SummarizeSpans(spans);
  auto find = [&](const std::string& name) -> double {
    for (const auto& [key, value] : metrics) {
      if (key == name) {
        return value;
      }
    }
    ADD_FAILURE() << "missing metric " << name;
    return -1;
  };
  EXPECT_DOUBLE_EQ(find("trace_spans"), 2.0);
  // Nearest-rank percentiles report observed samples: p50 of two samples is
  // the lower one, p99 the upper.
  EXPECT_DOUBLE_EQ(find("trace_elevator_p50_ms"), 2.0);
  EXPECT_DOUBLE_EQ(find("trace_device_p50_ms"), 3.0);
  EXPECT_DOUBLE_EQ(find("trace_total_p99_ms"), 9.0);
  EXPECT_DOUBLE_EQ(find("trace_causes"), 2.0);
  // Cause 7 saw both totals (5, 9); cause 9 only the second.
  EXPECT_DOUBLE_EQ(find("trace_cause7_total_p50_ms"), 5.0);
  EXPECT_DOUBLE_EQ(find("trace_cause9_total_p50_ms"), 9.0);
  // No span had cache/journal/swq residency: those layers are omitted.
  for (const auto& [key, value] : metrics) {
    (void)value;
    EXPECT_EQ(key.find("trace_cache"), std::string::npos) << key;
    EXPECT_EQ(key.find("trace_journal"), std::string::npos) << key;
    EXPECT_EQ(key.find("trace_swq"), std::string::npos) << key;
  }
}

TEST(SummarizeSpans, EmptyTraceIsJustTheCount) {
  auto metrics = obs::SummarizeSpans({});
  ASSERT_EQ(metrics.size(), 1u);
  EXPECT_EQ(metrics[0].first, "trace_spans");
  EXPECT_DOUBLE_EQ(metrics[0].second, 0.0);
}

TEST(SpanJsonl, OneObjectPerSpanWithResidencies) {
  std::vector<obs::RequestSpan> spans;
  spans.push_back(MakeSpan(1, Msec(1), Msec(2), Msec(5)));
  spans.back().causes = {3, 4};
  std::ostringstream out;
  obs::WriteSpansJsonl(spans, out);
  std::string jsonl = out.str();
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 1);
  EXPECT_NE(jsonl.find("\"id\":1"), std::string::npos);
  EXPECT_NE(jsonl.find("\"write\":1"), std::string::npos);
  EXPECT_NE(jsonl.find("\"causes\":[3,4]"), std::string::npos);
  EXPECT_NE(jsonl.find("\"in_elevator_ns\":1000000"), std::string::npos);
  EXPECT_NE(jsonl.find("\"on_device_ns\":3000000"), std::string::npos);
  EXPECT_NE(jsonl.find("\"total_ns\":4000000"), std::string::npos);
}

TEST(SpanBuilder, DropsUnfinishedRequests) {
  std::vector<obs::TraceEvent> events;
  obs::TraceEvent add;
  add.type = obs::EventType::kElvAdd;
  add.request_id = 1;
  add.time = 0;
  events.push_back(add);  // never completes
  obs::TraceEvent add2 = add;
  add2.request_id = 2;
  events.push_back(add2);
  obs::TraceEvent done;
  done.type = obs::EventType::kBlkComplete;
  done.request_id = 2;
  done.time = Msec(1);
  events.push_back(done);
  auto spans = obs::BuildSpans(events);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].id, 2u);
}

}  // namespace
}  // namespace splitio
