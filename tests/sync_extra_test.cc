// Focused tests for Event::WaitWithTimeout and other sync edge cases —
// including regression coverage for the GCC-12 awaiter double-destruction
// hazard this code works around (see src/sim/task.h).
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/sync.h"

namespace splitio {
namespace {

TEST(WaitWithTimeout, NotifiedBeforeTimeout) {
  Simulator sim;
  Event event;
  bool notified_result = false;
  Nanos woke_at = -1;
  auto waiter = [&]() -> Task<void> {
    notified_result = co_await event.WaitWithTimeout(Msec(100));
    woke_at = Simulator::current().Now();
  };
  auto notifier = [&]() -> Task<void> {
    co_await Delay(Msec(10));
    event.NotifyAll();
  };
  sim.Spawn(waiter());
  sim.Spawn(notifier());
  sim.Run();
  EXPECT_TRUE(notified_result);
  EXPECT_EQ(woke_at, Msec(10));
}

TEST(WaitWithTimeout, TimesOutWithoutNotification) {
  Simulator sim;
  Event event;
  bool notified_result = true;
  Nanos woke_at = -1;
  auto waiter = [&]() -> Task<void> {
    notified_result = co_await event.WaitWithTimeout(Msec(25));
    woke_at = Simulator::current().Now();
  };
  sim.Spawn(waiter());
  sim.Run();
  EXPECT_FALSE(notified_result);
  EXPECT_EQ(woke_at, Msec(25));
}

TEST(WaitWithTimeout, LateNotifyDoesNotDoubleResume) {
  Simulator sim;
  Event event;
  int wakes = 0;
  auto waiter = [&]() -> Task<void> {
    co_await event.WaitWithTimeout(Msec(5));
    ++wakes;
    co_await Delay(Msec(100));  // stay alive past the late notify
    ++wakes;
  };
  auto late_notifier = [&]() -> Task<void> {
    co_await Delay(Msec(50));  // after the timeout fired
    event.NotifyAll();
    event.NotifyOne();
  };
  sim.Spawn(waiter());
  sim.Spawn(late_notifier());
  sim.Run();
  EXPECT_EQ(wakes, 2);  // exactly one wake from the wait, one from the delay
}

TEST(WaitWithTimeout, RepeatedUseInLoop) {
  // The dispatch-loop pattern: many timed waits in sequence, with notifies
  // racing timeouts. Exercises the cancellation bookkeeping heavily.
  Simulator sim;
  Event event;
  int notified_count = 0;
  int timeout_count = 0;
  auto looper = [&]() -> Task<void> {
    for (int i = 0; i < 50; ++i) {
      if (co_await event.WaitWithTimeout(Msec(3))) {
        ++notified_count;
      } else {
        ++timeout_count;
      }
    }
  };
  auto notifier = [&]() -> Task<void> {
    for (int i = 0; i < 20; ++i) {
      co_await Delay(Msec(7));
      event.NotifyAll();
    }
  };
  sim.Spawn(looper());
  sim.Spawn(notifier());
  sim.Run();
  EXPECT_EQ(notified_count + timeout_count, 50);
  EXPECT_GT(notified_count, 5);
  EXPECT_GT(timeout_count, 5);
}

TEST(WaitWithTimeout, MultipleWaitersMixedOutcomes) {
  Simulator sim;
  Event event;
  std::vector<bool> results;
  auto waiter = [&](Nanos timeout) -> Task<void> {
    results.push_back(co_await event.WaitWithTimeout(timeout));
  };
  auto notifier = [&]() -> Task<void> {
    co_await Delay(Msec(20));
    event.NotifyAll();
  };
  sim.Spawn(waiter(Msec(5)));   // times out at 5 ms
  sim.Spawn(waiter(Msec(50)));  // notified at 20 ms
  sim.Spawn(notifier());
  sim.Run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0]);
  EXPECT_TRUE(results[1]);
}

TEST(Semaphore, TryAcquireNonBlocking) {
  Semaphore sem(1);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_FALSE(sem.TryAcquire());
  sem.Release();
  EXPECT_TRUE(sem.TryAcquire());
}

TEST(Delay, ZeroAndNegativeDelaysCompleteImmediately) {
  Simulator sim;
  int steps = 0;
  auto body = [&]() -> Task<void> {
    co_await Delay(0);
    ++steps;
    co_await Delay(-5);
    ++steps;
    EXPECT_EQ(Simulator::current().Now(), 0);
  };
  sim.Spawn(body());
  sim.Run();
  EXPECT_EQ(steps, 2);
}

TEST(Event, NotifyWithNoWaitersIsNoOp) {
  Simulator sim;
  Event event;
  event.NotifyOne();
  event.NotifyAll();
  EXPECT_FALSE(event.has_waiters());
  // A waiter arriving after stray notifications still waits (CV semantics).
  bool woke = false;
  auto waiter = [&]() -> Task<void> {
    co_await event.Wait();
    woke = true;
  };
  sim.Spawn(waiter());
  sim.Run(Msec(10));
  EXPECT_FALSE(woke);
}

}  // namespace
}  // namespace splitio
