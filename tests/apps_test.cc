// Tests for the application models: WalDb, PgSim, VmGuest, DfsCluster.
#include <gtest/gtest.h>

#include <memory>

#include "src/apps/dfs.h"
#include "src/apps/pgsim.h"
#include "src/apps/vm_guest.h"
#include "src/apps/waldb.h"
#include "src/block/block_deadline.h"
#include "src/block/noop.h"
#include "src/core/storage_stack.h"
#include "src/sim/simulator.h"

namespace splitio {
namespace {

struct Harness {
  Harness() {
    StackConfig config;
    cpu = std::make_unique<CpuModel>(8);
    stack = std::make_unique<StorageStack>(
        config, cpu.get(), nullptr, std::make_unique<NoopElevator>());
    stack->Start();
  }
  std::unique_ptr<CpuModel> cpu;
  std::unique_ptr<StorageStack> stack;
};

TEST(WalDbApp, TransactionsCommitAndRecordLatency) {
  Simulator sim;
  Harness h;
  Process* worker = h.stack->NewProcess("worker");
  Process* ckpt = h.stack->NewProcess("ckpt");
  WalDb::Config config;
  config.checkpoint_threshold_rows = 100;
  WalDb db(h.stack.get(), worker, ckpt, config);
  auto body = [&]() -> Task<void> {
    co_await db.Open();
    Simulator::current().Spawn(db.RunUpdates(Sec(10)));
    Simulator::current().Spawn(db.RunCheckpointer(Sec(10)));
  };
  sim.Spawn(body());
  sim.Run(Sec(10));
  EXPECT_GT(db.txns(), 50u);
  EXPECT_EQ(db.txn_latency().count(), db.txns());
  EXPECT_GE(db.checkpoints(), 1u);
  // Every transaction fsync'd the WAL: data reached the device.
  EXPECT_GT(h.stack->device().total_bytes_written(), db.txns() * 4096);
}

TEST(WalDbApp, CheckpointsTrackThreshold) {
  Simulator sim;
  Harness h;
  Process* worker = h.stack->NewProcess("worker");
  Process* ckpt = h.stack->NewProcess("ckpt");
  WalDb::Config config;
  config.checkpoint_threshold_rows = 1000000;  // effectively never
  WalDb db(h.stack.get(), worker, ckpt, config);
  auto body = [&]() -> Task<void> {
    co_await db.Open();
    Simulator::current().Spawn(db.RunUpdates(Sec(5)));
    Simulator::current().Spawn(db.RunCheckpointer(Sec(5)));
  };
  sim.Spawn(body());
  sim.Run(Sec(5));
  EXPECT_EQ(db.checkpoints(), 0u);
}

TEST(PgSimApp, WorkersAndCheckpointerRun) {
  Simulator sim;
  Harness h;
  PgSim::Config config;
  config.workers = 2;
  config.checkpoint_interval = Sec(4);
  PgSim pg(h.stack.get(), config);
  auto body = [&]() -> Task<void> {
    co_await pg.Open();
    pg.Start(Sec(10));
  };
  sim.Spawn(body());
  sim.Run(Sec(10));
  EXPECT_GT(pg.txns(), 20u);
  EXPECT_GE(pg.checkpoints(), 2u);
  EXPECT_EQ(pg.txn_latency().count(), pg.txns());
}

TEST(VmGuestApp, GuestCacheAbsorbsRereads) {
  Simulator sim;
  Harness h;
  Process* vm = h.stack->NewProcess("vm");
  VmGuest::Config config;
  VmGuest guest(h.stack.get(), vm, config);
  guest.CreateImage("/img");
  guest.Start();
  auto body = [&]() -> Task<void> {
    co_await guest.Read(0, 1 << 20);  // miss: host I/O
    uint64_t host_reads_after_first = guest.host_reads();
    co_await guest.Read(0, 1 << 20);  // hit: guest cache
    EXPECT_EQ(guest.host_reads(), host_reads_after_first);
    EXPECT_GT(guest.guest_cache_hits(), 0u);
  };
  sim.Spawn(body());
  sim.Run(Sec(5));
}

TEST(VmGuestApp, GuestWritesFlushThroughHost) {
  Simulator sim;
  Harness h;
  Process* vm = h.stack->NewProcess("vm");
  VmGuest::Config config;
  VmGuest guest(h.stack.get(), vm, config);
  guest.CreateImage("/img");
  guest.Start();
  auto body = [&]() -> Task<void> {
    co_await guest.Write(0, 4 << 20);
    co_await guest.Fsync();
    // Data traversed the host stack and reached the device.
    EXPECT_GE(h.stack->device().total_bytes_written(), 4u << 20);
  };
  sim.Spawn(body());
  sim.Run(Sec(10));
}

TEST(VmGuestApp, GuestDirtyRatioBoundsBuffering) {
  Simulator sim;
  Harness h;
  Process* vm = h.stack->NewProcess("vm");
  VmGuest::Config config;
  config.guest_ram = 64 << 20;  // guest may buffer at most ~12.8 MB
  VmGuest guest(h.stack.get(), vm, config);
  guest.CreateImage("/img");
  guest.Start();
  auto body = [&]() -> Task<void> {
    co_await guest.Write(0, 64 << 20);  // far beyond the guest buffer
  };
  sim.Spawn(body());
  sim.Run(Sec(30));
  // The overflow was pushed through the host during the write.
  EXPECT_GT(h.stack->device().total_bytes_written() +
                h.stack->cache().dirty_bytes() +
                h.stack->cache().writeback_pages() * kPageSize,
            32u << 20);
}

TEST(DfsClusterApp, ReplicatesBlocksAcrossWorkers) {
  Simulator sim;
  DfsCluster::Config config;
  config.workers = 4;
  config.replication = 3;
  config.block_bytes = 8 << 20;
  DfsCluster cluster(config);
  cluster.Start();
  WorkloadStats stats;
  sim.Spawn(cluster.ClientWriter(/*client=*/0, /*account=*/-1, Sec(20),
                                 &stats));
  sim.Run(Sec(20));
  EXPECT_GT(stats.bytes, 8u << 20);  // at least one block written
  // Replication: total bytes buffered/written across workers ~= 3x the
  // application bytes.
  uint64_t cluster_bytes = 0;
  for (int w = 0; w < cluster.workers(); ++w) {
    cluster_bytes += cluster.worker(w).device().total_bytes_written() +
                     cluster.worker(w).cache().dirty_bytes() +
                     cluster.worker(w).cache().writeback_pages() * kPageSize;
  }
  EXPECT_GT(cluster_bytes, 2 * stats.bytes);
}

TEST(DfsClusterApp, ThrottledAccountIsSlower) {
  Simulator sim;
  DfsCluster::Config config;
  config.workers = 4;
  config.block_bytes = 8 << 20;
  DfsCluster cluster(config);
  cluster.Start();
  cluster.SetAccountLimit(1, 2.0 * 1024 * 1024);
  WorkloadStats fast;
  WorkloadStats slow;
  sim.Spawn(cluster.ClientWriter(0, -1, Sec(30), &fast));
  sim.Spawn(cluster.ClientWriter(1, 1, Sec(30), &slow));
  sim.Run(Sec(30));
  EXPECT_GT(fast.bytes, 2 * slow.bytes);
}

}  // namespace
}  // namespace splitio
