// sched_search — autotuner over the declarative scheduler policy space.
//
// Candidates are the ten registered PolicySpecs (eight canonical kinds plus
// the deadline-token / tenant-afq hybrids) and --random N pseudo-random but
// structurally valid compositions (RandomPolicySpec over fixed seeds, so a
// given command line is fully deterministic). Each candidate runs three
// deterministic workloads shaped like the paper's experiments:
//
//   fsync-entangle — fig05: a transactional fsync writer vs a bulk buffered
//                    writer on an HDD ext4 stack;
//   mixed-rw       — fig09: interleaved readers and writers plus a
//                    transactional process, on an SSD blk-mq stack;
//   read-heavy     — two random readers against a background writer on HDD.
//
// The cost model is the executor's measurement surface: makespan
// (ops_done_at), read p99 and fsync p99 service times (ExecResult::
// op_latency), device busy time, and peak queue depth (the high-water mark
// of elevator + software-queue occupancy — the memory/backlog cost a
// throughput-only comparison hides: two specs with equal makespan can
// differ by an order of magnitude in how much submitted-but-unserviced work
// they let pile up). A candidate is valid only if the run quiesced (all ops
// completed, nothing lost: submitted = completed + merged, elevator empty).
// Per workload the tool reports the Pareto front over the five metrics
// (lower is better) and, per canonical scheduler, which composed specs
// strictly beat it on which axis.
//
// Self-check (exit 1 on violation):
//   1. determinism — every front member re-runs metric-identical;
//   2. front consistency — no front member is dominated by any valid
//      candidate;
//   3. coverage — at least one non-canonical spec strictly beats a
//      hand-written (canonical) scheduler on at least one workload axis.
//
//   sched_search [--random N] [--budget SECONDS] [--out FILE]
//
// --budget stops *starting* new random candidates once spent (registered
// specs always run, so the report is never missing its baselines); the cut
// is logged in the report ("random_skipped") rather than silent.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/sched_factory.h"
#include "src/sched/policy.h"
#include "src/sim/random.h"
#include "src/stress/executor.h"
#include "src/stress/scenario.h"
#include "src/workload/json_mini.h"

namespace splitio {
namespace {

struct Metrics {
  bool valid = false;
  Nanos makespan = 0;
  Nanos read_p99 = 0;
  Nanos fsync_p99 = 0;
  Nanos device_busy = 0;
  int queue_peak = 0;

  bool operator==(const Metrics&) const = default;
};

struct Candidate {
  PolicySpec spec;
  bool canonical = false;  // one of the eight hand-written kinds
};

struct Evaluated {
  const Candidate* candidate = nullptr;
  Metrics metrics;
  bool pareto = false;
};

struct Domination {
  std::string spec;
  std::string beats;  // a canonical scheduler's name
  std::string axis;   // which metric axis the strict win is on
};

struct WorkloadResult {
  std::string name;
  std::vector<Evaluated> rows;
  std::vector<Domination> dominations;
};

Nanos Percentile99(std::vector<Nanos> values) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  size_t idx = (values.size() * 99 + 99) / 100;  // ceil(0.99n), 1-based
  if (idx > values.size()) {
    idx = values.size();
  }
  return values[idx - 1];
}

Metrics Evaluate(const Scenario& base, const PolicySpec& spec) {
  Scenario s = base;
  s.stack.use_spec = true;
  s.stack.spec = spec;
  ExecOptions opts;
  opts.trace = false;
  opts.crash_points = 0;
  ExecResult r = ExecuteScenario(s, opts);

  Metrics m;
  m.valid = r.all_ops_completed &&
            r.submitted == r.completed + r.merged &&
            r.inflight_at_end == 0 && r.elevator_empty;
  m.makespan = r.ops_done_at;
  m.device_busy = r.device_busy;
  m.queue_peak = r.queue_peak;
  std::vector<Nanos> reads;
  std::vector<Nanos> fsyncs;
  for (size_t i = 0; i < base.program.ops.size(); ++i) {
    if (base.program.ops[i].kind == StressOpKind::kRead) {
      reads.push_back(r.op_latency[i]);
    } else if (base.program.ops[i].kind == StressOpKind::kFsync) {
      fsyncs.push_back(r.op_latency[i]);
    }
  }
  m.read_p99 = Percentile99(std::move(reads));
  m.fsync_p99 = Percentile99(std::move(fsyncs));
  return m;
}

// a dominates b: no metric worse, at least one strictly better.
bool Dominates(const Metrics& a, const Metrics& b) {
  if (!a.valid || !b.valid) {
    return a.valid && !b.valid;
  }
  bool no_worse = a.makespan <= b.makespan && a.read_p99 <= b.read_p99 &&
                  a.fsync_p99 <= b.fsync_p99 &&
                  a.device_busy <= b.device_busy &&
                  a.queue_peak <= b.queue_peak;
  bool better = a.makespan < b.makespan || a.read_p99 < b.read_p99 ||
                a.fsync_p99 < b.fsync_p99 || a.device_busy < b.device_busy ||
                a.queue_peak < b.queue_peak;
  return no_worse && better;
}

// --------------------------------------------------------------------------
// The three deterministic workloads (programs follow the determinism
// contract in src/workload/program.h, so every candidate sees identical
// offered load).
// --------------------------------------------------------------------------

StressOp Op(StressOpKind kind, int proc, int file, uint64_t offset,
            uint64_t len, Nanos delay = 0) {
  StressOp op;
  op.kind = kind;
  op.proc = proc;
  op.file = file;
  op.offset = offset;
  op.len = len;
  op.delay = delay;
  return op;
}

Scenario FsyncEntangle() {
  Scenario s;
  s.seed = 105;
  s.program.num_procs = 2;
  s.program.num_files = 2;
  s.program.priorities = {1, 7};
  for (int i = 0; i < 24; ++i) {
    s.program.ops.push_back(Op(StressOpKind::kWrite, 0, 0,
                               static_cast<uint64_t>(i) * 4096, 4096,
                               Usec(500)));
    s.program.ops.push_back(Op(StressOpKind::kFsync, 0, 0, 0, 0));
  }
  // Bulk writer dirties ~10 MB with no think time: the backlog the entangled
  // commits (and a split policy's entry-side throttling) have to contend
  // with.
  for (int i = 0; i < 40; ++i) {
    s.program.ops.push_back(Op(StressOpKind::kWrite, 1, 1,
                               static_cast<uint64_t>(i) * (256 << 10),
                               256 << 10));
  }
  return s;
}

Scenario MixedRw() {
  Scenario s;
  s.seed = 109;
  s.stack.device = StackConfig::DeviceKind::kSsd;
  s.stack.mq = true;
  s.stack.hw_queues = 2;
  s.stack.queue_depth = 4;
  s.program.num_procs = 3;
  s.program.num_files = 3;
  s.program.priorities = {2, 4, 6};
  for (int i = 0; i < 48; ++i) {
    s.program.ops.push_back(Op(StressOpKind::kWrite, 0, 0,
                               static_cast<uint64_t>(i) * 65536, 65536));
    s.program.ops.push_back(Op(StressOpKind::kRead, 1, 0,
                               static_cast<uint64_t>((i * 7) % 48) * 65536,
                               65536, Usec(250)));
  }
  for (int i = 0; i < 10; ++i) {
    s.program.ops.push_back(Op(StressOpKind::kWrite, 2, 2,
                               static_cast<uint64_t>(i) * 16384, 16384));
    s.program.ops.push_back(Op(StressOpKind::kFsync, 2, 2, 0, 0, Msec(1)));
  }
  return s;
}

Scenario ReadHeavy() {
  Scenario s;
  s.seed = 113;
  s.program.num_procs = 3;
  s.program.num_files = 2;
  s.program.priorities = {3, 3, 7};
  // Two readers stride across a cold region (holes read through the stack)
  // while a background writer keeps the write path busy.
  for (int i = 0; i < 40; ++i) {
    s.program.ops.push_back(Op(StressOpKind::kRead, 0, 0,
                               static_cast<uint64_t>((i * 13) % 64) * 65536,
                               65536, Usec(500)));
    s.program.ops.push_back(Op(StressOpKind::kRead, 1, 0,
                               static_cast<uint64_t>((i * 5) % 64) * 65536,
                               65536, Usec(500)));
  }
  for (int i = 0; i < 24; ++i) {
    s.program.ops.push_back(Op(StressOpKind::kWrite, 2, 1,
                               static_cast<uint64_t>(i) * (128 << 10),
                               128 << 10));
  }
  return s;
}

// --------------------------------------------------------------------------
// Report.
// --------------------------------------------------------------------------

std::string MetricsJson(const Metrics& m) {
  std::string out = "{\"valid\":";
  out += m.valid ? "true" : "false";
  out += ",\"makespan_ns\":" + std::to_string(m.makespan);
  out += ",\"read_p99_ns\":" + std::to_string(m.read_p99);
  out += ",\"fsync_p99_ns\":" + std::to_string(m.fsync_p99);
  out += ",\"device_busy_ns\":" + std::to_string(m.device_busy);
  out += ",\"queue_peak\":" + std::to_string(m.queue_peak);
  out += "}";
  return out;
}

int Usage() {
  std::fprintf(stderr,
               "usage: sched_search [--random N] [--budget SECONDS]\n"
               "                    [--out FILE]\n");
  return 2;
}

}  // namespace
}  // namespace splitio

int main(int argc, char** argv) {
  using namespace splitio;

  int random_candidates = 24;
  double budget_seconds = 0;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--random") {
      const char* val = next();
      if (val == nullptr) {
        return Usage();
      }
      random_candidates = std::atoi(val);
      if (random_candidates < 0) {
        return Usage();
      }
    } else if (arg == "--budget") {
      const char* val = next();
      if (val == nullptr) {
        return Usage();
      }
      budget_seconds = std::atof(val);
      if (budget_seconds < 0) {
        return Usage();
      }
    } else if (arg == "--out") {
      const char* val = next();
      if (val == nullptr) {
        return Usage();
      }
      out_path = val;
    } else {
      return Usage();
    }
  }

  auto t0 = std::chrono::steady_clock::now();
  auto budget_spent = [&]() {
    if (budget_seconds <= 0) {
      return false;
    }
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;
    return elapsed.count() >= budget_seconds;
  };

  // Candidate pool: every registered spec, then the random compositions.
  // Random seeds are fixed (1000 + i) so the pool depends only on the
  // command line, never on prior draws or wall clock.
  std::vector<Candidate> pool;
  size_t canonical_count = 0;
  for (const std::string& name : AllPolicySpecNames()) {
    Candidate cand;
    if (!NamedPolicySpec(name, &cand.spec)) {
      std::fprintf(stderr, "sched_search: %s\n",
                   UnknownSchedMessage(name).c_str());
      return 2;
    }
    SchedKind kind;
    cand.canonical = SchedKindFromName(name.c_str(), &kind);
    canonical_count += cand.canonical ? 1 : 0;
    pool.push_back(std::move(cand));
  }
  int random_skipped = 0;
  for (int i = 0; i < random_candidates; ++i) {
    if (budget_spent()) {
      random_skipped = random_candidates - i;
      break;
    }
    Rng rng(1000 + static_cast<uint64_t>(i));
    Candidate cand;
    cand.spec = RandomPolicySpec(rng);
    // Random names can collide across seeds (the name encodes the axes, not
    // the numeric config); keep first occurrence so report rows stay unique.
    bool duplicate = false;
    for (const Candidate& c : pool) {
      if (c.spec.name == cand.spec.name) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      pool.push_back(std::move(cand));
    }
  }

  struct Workload {
    std::string name;
    Scenario scenario;
  };
  std::vector<Workload> workloads = {{"fsync-entangle", FsyncEntangle()},
                                     {"mixed-rw", MixedRw()},
                                     {"read-heavy", ReadHeavy()}};

  bool determinism_ok = true;
  bool front_ok = true;
  bool dominates_canonical = false;
  std::vector<WorkloadResult> results;

  for (const Workload& w : workloads) {
    WorkloadResult res;
    res.name = w.name;
    for (const Candidate& cand : pool) {
      Evaluated row;
      row.candidate = &cand;
      row.metrics = Evaluate(w.scenario, cand.spec);
      res.rows.push_back(row);
    }
    // Pareto front over valid rows.
    for (Evaluated& row : res.rows) {
      if (!row.metrics.valid) {
        continue;
      }
      row.pareto = true;
      for (const Evaluated& other : res.rows) {
        if (&other != &row && Dominates(other.metrics, row.metrics)) {
          row.pareto = false;
          break;
        }
      }
    }
    // Self-check 1+2: front members re-run metric-identical and stay
    // undominated (recheck against a fresh evaluation of every candidate).
    for (const Evaluated& row : res.rows) {
      if (!row.pareto) {
        continue;
      }
      Metrics again = Evaluate(w.scenario, row.candidate->spec);
      if (!(again == row.metrics)) {
        determinism_ok = false;
        std::fprintf(stderr,
                     "sched_search: %s/%s re-ran with different metrics\n",
                     w.name.c_str(), row.candidate->spec.name.c_str());
      }
      for (const Evaluated& other : res.rows) {
        if (other.candidate != row.candidate &&
            Dominates(other.metrics, again)) {
          front_ok = false;
          std::fprintf(stderr,
                       "sched_search: front member %s/%s dominated by %s\n",
                       w.name.c_str(), row.candidate->spec.name.c_str(),
                       other.candidate->spec.name.c_str());
        }
      }
    }
    // Per-axis wins of composed specs over hand-written schedulers.
    for (const Evaluated& row : res.rows) {
      if (row.candidate->canonical || !row.metrics.valid) {
        continue;
      }
      for (const Evaluated& base : res.rows) {
        if (!base.candidate->canonical || !base.metrics.valid) {
          continue;
        }
        auto axis_win = [&](Nanos mine, Nanos theirs, const char* axis) {
          if (mine < theirs) {
            res.dominations.push_back({row.candidate->spec.name,
                                       base.candidate->spec.name, axis});
            dominates_canonical = true;
          }
        };
        axis_win(row.metrics.makespan, base.metrics.makespan, "makespan");
        axis_win(row.metrics.read_p99, base.metrics.read_p99, "read_p99");
        axis_win(row.metrics.fsync_p99, base.metrics.fsync_p99, "fsync_p99");
        axis_win(row.metrics.device_busy, base.metrics.device_busy,
                 "device_busy");
        axis_win(row.metrics.queue_peak, base.metrics.queue_peak,
                 "queue_peak");
      }
    }
    results.push_back(std::move(res));
  }

  bool pass = determinism_ok && front_ok && dominates_canonical;

  // ---- Report: human summary to stdout, JSON to --out (or stdout). ----
  std::string json = "{\"candidates\":" + std::to_string(pool.size());
  json += ",\"random_skipped\":" + std::to_string(random_skipped);
  json += ",\"workloads\":[";
  for (size_t wi = 0; wi < results.size(); ++wi) {
    const WorkloadResult& res = results[wi];
    if (wi > 0) {
      json += ",";
    }
    json += "{\"name\":\"" + jsonmini::Escape(res.name) + "\",\"rows\":[";
    for (size_t i = 0; i < res.rows.size(); ++i) {
      const Evaluated& row = res.rows[i];
      if (i > 0) {
        json += ",";
      }
      json += "{\"spec\":\"" + jsonmini::Escape(row.candidate->spec.name) +
              "\",\"canonical\":" +
              (row.candidate->canonical ? "true" : "false") +
              ",\"pareto\":" + (row.pareto ? "true" : "false") +
              ",\"metrics\":" + MetricsJson(row.metrics) + "}";
    }
    json += "],\"dominations\":[";
    for (size_t i = 0; i < res.dominations.size(); ++i) {
      const Domination& d = res.dominations[i];
      if (i > 0) {
        json += ",";
      }
      json += "{\"spec\":\"" + jsonmini::Escape(d.spec) + "\",\"beats\":\"" +
              jsonmini::Escape(d.beats) + "\",\"axis\":\"" + d.axis + "\"}";
    }
    json += "]}";
  }
  json += "],\"selfcheck\":{\"determinism\":";
  json += determinism_ok ? "true" : "false";
  json += ",\"front_consistent\":";
  json += front_ok ? "true" : "false";
  json += ",\"dominates_canonical\":";
  json += dominates_canonical ? "true" : "false";
  json += ",\"pass\":";
  json += pass ? "true" : "false";
  json += "}}";

  for (const WorkloadResult& res : results) {
    std::printf("== %s ==\n", res.name.c_str());
    std::printf("%-16s %5s %6s %12s %12s %12s %12s %6s\n", "spec", "canon",
                "front", "makespan_ms", "read_p99_ms", "fsync_p99_ms",
                "busy_ms", "qpeak");
    for (const Evaluated& row : res.rows) {
      if (!row.metrics.valid) {
        std::printf("%-16s %5s %6s %12s\n", row.candidate->spec.name.c_str(),
                    row.candidate->canonical ? "yes" : "", "", "INVALID");
        continue;
      }
      std::printf("%-16s %5s %6s %12.2f %12.2f %12.2f %12.2f %6d\n",
                  row.candidate->spec.name.c_str(),
                  row.candidate->canonical ? "yes" : "",
                  row.pareto ? "*" : "",
                  static_cast<double>(row.metrics.makespan) / 1e6,
                  static_cast<double>(row.metrics.read_p99) / 1e6,
                  static_cast<double>(row.metrics.fsync_p99) / 1e6,
                  static_cast<double>(row.metrics.device_busy) / 1e6,
                  row.metrics.queue_peak);
    }
    std::printf("axis wins over hand-written schedulers: %zu\n\n",
                res.dominations.size());
  }
  std::printf("self-check: determinism %s; front consistent %s; composed "
              "spec beats a canonical on some axis %s => %s\n",
              determinism_ok ? "yes" : "NO", front_ok ? "yes" : "NO",
              dominates_canonical ? "yes" : "NO", pass ? "PASS" : "FAIL");

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "sched_search: cannot write %s\n",
                   out_path.c_str());
      return 2;
    }
    out << json << "\n";
  } else {
    std::printf("%s\n", json.c_str());
  }
  (void)canonical_count;
  return pass ? 0 : 1;
}
