// trace_stats: offline analyzer for the span JSONL files the bench binaries
// write under --trace (see src/obs and bench/common/flags.h).
//
// Usage:
//   trace_stats SPANS.jsonl
//   trace_stats --diff OLD.jsonl NEW.jsonl [--threshold FRACTION]
//               [--tolerance LAYER=FRACTION]...
//
// Single-file mode prints, per scheduler label, a per-layer residency table
// (count / mean / p50 / p95 / p99 / p99.9 ms for cache, journal, software queue,
// elevator, device, and end-to-end). Diff mode aligns two traces by
// scheduler label and reports the change in mean residency per layer; it
// exits non-zero if any scheduler's end-to-end mean regressed by more than
// --threshold (default 0.25), or any layer given an explicit
// `--tolerance layer=frac` (e.g. `--tolerance device=0.15`) regressed
// beyond it. Every gated regression is reported by name —
// "sched/layer: old -> new" — through the shared per-metric tolerance
// machinery (tools/report_common.h, also used by metrics_report), so a CI
// failure says *which* scheduler and layer drifted.
//
// Like bench_runner, this tool is standalone (no splitio dependency) and
// parses the compact one-object-per-line JSON the span writer emits with
// string searches rather than a JSON library.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "tools/report_common.h"

namespace {

// The residency fields WriteSpansJsonl emits, in stack order.
constexpr const char* kLayerFields[] = {
    "in_cache_ns", "in_journal_ns", "in_swq_ns",
    "in_elevator_ns", "on_device_ns", "total_ns",
};
constexpr const char* kLayerNames[] = {
    "cache", "journal", "swq", "elevator", "device", "total",
};
constexpr size_t kLayers = sizeof(kLayerFields) / sizeof(kLayerFields[0]);

struct LayerSamples {
  std::vector<double> ms;  // one sample per span, already in milliseconds
  double sum_ms = 0;

  void Add(double v) {
    ms.push_back(v);
    sum_ms += v;
  }
  double Mean() const {
    return ms.empty() ? 0 : sum_ms / static_cast<double>(ms.size());
  }
  // Nearest-rank (ceil) on the sorted samples — the same definition as
  // LatencyRecorder::Percentile, so trace_stats and BENCHJSON percentiles
  // agree on identical sample sets. Callers sort once via Finish().
  double Percentile(double p) const {
    if (ms.empty()) {
      return 0;
    }
    if (p <= 0) {
      return ms.front();
    }
    double rank = p / 100.0 * static_cast<double>(ms.size());
    auto idx = static_cast<size_t>(std::ceil(rank));
    idx = std::min(std::max<size_t>(idx, 1), ms.size());
    return ms[idx - 1];
  }
  void Finish() { std::sort(ms.begin(), ms.end()); }
};

struct SchedStats {
  uint64_t spans = 0;
  LayerSamples layers[kLayers];
};

// Finds `"key":<number>` in a compact JSONL line. Returns false if absent.
bool FindNumber(const std::string& line, const char* key, double* out) {
  std::string needle = std::string("\"") + key + "\":";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  *out = std::strtod(line.c_str() + pos + needle.size(), nullptr);
  return true;
}

// Finds `"key":"value"` in a compact JSONL line.
bool FindString(const std::string& line, const char* key, std::string* out) {
  std::string needle = std::string("\"") + key + "\":\"";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  size_t start = pos + needle.size();
  size_t end = line.find('"', start);
  if (end == std::string::npos) {
    return false;
  }
  *out = line.substr(start, end - start);
  return true;
}

// Loads a span JSONL file into per-scheduler-label layer samples. The map is
// ordered so output (and diffs) are stable across runs.
std::map<std::string, SchedStats> Load(const std::string& path, bool* ok) {
  std::map<std::string, SchedStats> by_sched;
  std::ifstream in(path);
  *ok = in.good();
  if (!*ok) {
    std::fprintf(stderr, "trace_stats: cannot open %s\n", path.c_str());
    return by_sched;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::string sched;
    if (!FindString(line, "sched", &sched)) {
      continue;  // not a span line
    }
    if (sched.empty()) {
      sched = "(unlabeled)";
    }
    SchedStats& stats = by_sched[sched];
    ++stats.spans;
    for (size_t i = 0; i < kLayers; ++i) {
      double ns = 0;
      FindNumber(line, kLayerFields[i], &ns);
      stats.layers[i].Add(ns / 1e6);
    }
  }
  for (auto& [sched, stats] : by_sched) {
    (void)sched;
    for (LayerSamples& layer : stats.layers) {
      layer.Finish();
    }
  }
  return by_sched;
}

int PrintStats(const std::string& path) {
  bool ok = false;
  auto by_sched = Load(path, &ok);
  if (!ok) {
    return 2;
  }
  if (by_sched.empty()) {
    std::fprintf(stderr, "trace_stats: no spans in %s\n", path.c_str());
    return 2;
  }
  uint64_t total_spans = 0;
  for (const auto& [sched, stats] : by_sched) {
    (void)sched;
    total_spans += stats.spans;
  }
  std::printf("%s: %llu spans, %zu scheduler label(s)\n", path.c_str(),
              static_cast<unsigned long long>(total_spans), by_sched.size());
  for (const auto& [sched, stats] : by_sched) {
    std::printf("\n-- %s (%llu spans) --\n", sched.c_str(),
                static_cast<unsigned long long>(stats.spans));
    std::printf("%10s %10s %10s %10s %10s %10s %8s\n", "layer", "mean(ms)",
                "p50(ms)", "p95(ms)", "p99(ms)", "p99.9(ms)", "share");
    double total_mean = stats.layers[kLayers - 1].Mean();
    for (size_t i = 0; i < kLayers; ++i) {
      const LayerSamples& layer = stats.layers[i];
      double share = total_mean > 0 && i + 1 < kLayers
                         ? 100.0 * layer.Mean() / total_mean
                         : 100.0;
      std::printf("%10s %10.3f %10.3f %10.3f %10.3f %10.3f %7.1f%%\n",
                  kLayerNames[i], layer.Mean(), layer.Percentile(50),
                  layer.Percentile(95), layer.Percentile(99),
                  layer.Percentile(99.9), share);
    }
  }
  std::printf("\n(share = layer mean / end-to-end mean; layers overlap the "
              "queue residencies, so shares need not sum to 100%%.)\n");
  return 0;
}

int Diff(const std::string& old_path, const std::string& new_path,
         double threshold, const report::Tolerances& tol) {
  bool old_ok = false;
  bool new_ok = false;
  auto olds = Load(old_path, &old_ok);
  auto news = Load(new_path, &new_ok);
  if (!old_ok || !new_ok) {
    return 2;
  }
  std::printf("diff: %s -> %s (regression threshold %.0f%% on end-to-end "
              "mean)\n",
              old_path.c_str(), new_path.c_str(), threshold * 100);
  std::vector<report::Offender> offenders;
  for (const auto& [sched, n] : news) {
    auto it = olds.find(sched);
    if (it == olds.end()) {
      std::printf("\n-- %s: only in %s (%llu spans) --\n", sched.c_str(),
                  new_path.c_str(), static_cast<unsigned long long>(n.spans));
      continue;
    }
    const SchedStats& o = it->second;
    std::printf("\n-- %s (%llu -> %llu spans) --\n", sched.c_str(),
                static_cast<unsigned long long>(o.spans),
                static_cast<unsigned long long>(n.spans));
    std::printf("%10s %12s %12s %9s\n", "layer", "old-mean(ms)",
                "new-mean(ms)", "delta");
    for (size_t i = 0; i < kLayers; ++i) {
      double om = o.layers[i].Mean();
      double nm = n.layers[i].Mean();
      double delta = om > 0 ? (nm - om) / om : 0;
      // End-to-end always gates at --threshold; other layers gate only when
      // the caller named them with --tolerance (so the default behavior —
      // per-layer drift is informational — is unchanged).
      bool end_to_end = i + 1 == kLayers;
      auto named = tol.by_name.find(kLayerNames[i]);
      double gate_at = end_to_end ? threshold
                       : named != tol.by_name.end() ? named->second
                                                    : -1;
      bool regressed =
          gate_at >= 0 && om > 0 && report::GateIncrease(om, nm, gate_at, 0);
      if (regressed) {
        offenders.push_back({std::string(sched) + "/" + kLayerNames[i], om,
                             nm, gate_at, "ms mean"});
      }
      std::printf("%10s %12.3f %12.3f %+8.1f%%%s\n", kLayerNames[i], om, nm,
                  delta * 100, regressed ? "  REGRESSION" : "");
    }
  }
  for (const auto& [sched, o] : olds) {
    if (news.find(sched) == news.end()) {
      std::printf("\n-- %s: only in %s (%llu spans) --\n", sched.c_str(),
                  old_path.c_str(), static_cast<unsigned long long>(o.spans));
    }
  }
  if (!offenders.empty()) {
    std::printf("\n%zu scheduler/layer pair(s) regressed beyond tolerance:\n",
                offenders.size());
    report::PrintOffenders(offenders);
    return 1;
  }
  std::printf("\nno end-to-end regression beyond %.0f%%\n", threshold * 100);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string diff_old;
  std::string diff_new;
  std::string trace;
  double threshold = 0.25;
  report::Tolerances tol;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--diff") {
      diff_old = next("--diff");
      diff_new = next("--diff");
    } else if (arg == "--threshold") {
      threshold = std::strtod(next("--threshold").c_str(), nullptr);
    } else if (arg == "--tolerance") {
      std::string spec = next("--tolerance");
      if (!tol.ParseFlag(spec)) {
        std::fprintf(stderr, "bad --tolerance spec: %s\n", spec.c_str());
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: trace_stats SPANS.jsonl\n"
                  "       trace_stats --diff OLD.jsonl NEW.jsonl "
                  "[--threshold FRACTION] [--tolerance LAYER=FRACTION]...\n");
      return 0;
    } else {
      trace = arg;
    }
  }
  if (!diff_old.empty()) {
    return Diff(diff_old, diff_new, threshold, tol);
  }
  if (trace.empty()) {
    std::fprintf(stderr, "no trace given (see --help)\n");
    return 2;
  }
  return PrintStats(trace);
}
