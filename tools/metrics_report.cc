// metrics_report: offline renderer and regression gate for the timeline
// JSONL files the bench binaries write under --metrics (src/obs/metrics).
//
// Usage:
//   metrics_report TIMELINES.jsonl
//   metrics_report --diff OLD.jsonl NEW.jsonl [--tolerance NAME=FRACTION]...
//
// Single-file mode prints, per scheduler label, the gauge series (samples,
// peak, average, last), the latency histogram sketches (count and p50 /
// p99 / p99.9 / max in ms), and the SLO burn-rate alert summaries.
//
// Diff mode aligns the two files by (label, series name) and gates on
// *increases* in per-series peak and average, histogram p99.9, and
// burn-alert window counts — `new > old * (1 + tol) + atol`, tolerance per
// metric name (default 10%, override with `--tolerance swq_depth=0.5`; a
// bare `--tolerance 0.2` changes the default). A series present in OLD but
// missing from NEW also gates: losing a timeline is how regressions hide.
// Every offender is printed with its label, metric, and numbers
// (tools/report_common.h), and the exit code is 1 so CI can gate on it —
// e.g. a queue-depth timeline regression fails the metrics_smoke ctest.
//
// Standalone like trace_stats: compact one-object-per-line JSON is parsed
// with string searches, no splitio dependency.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "tools/report_common.h"

namespace {

struct SeriesRec {
  std::string unit;
  double period_ns = 0;
  double samples = 0;
  double peak = 0;
  double avg = 0;
  double last = 0;
};

struct HistRec {
  double count = 0;
  double min_ns = 0;
  double max_ns = 0;
  double p50_ns = 0;
  double p99_ns = 0;
  double p999_ns = 0;
};

struct AlertRec {
  double window_ns = 0;
  double target_ns = 0;
  double budget = 0;
  double windows = 0;
  double alert_windows = 0;
  double first_alert_ns = -1;
  double worst_fraction = 0;
};

// Keyed by "label/name"; std::map keeps output and diffs stable.
struct MetricsFile {
  std::map<std::string, SeriesRec> series;
  std::map<std::string, HistRec> hists;
  std::map<std::string, AlertRec> alerts;
};

bool FindNumber(const std::string& line, const char* key, double* out) {
  std::string needle = std::string("\"") + key + "\":";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  *out = std::strtod(line.c_str() + pos + needle.size(), nullptr);
  return true;
}

bool FindString(const std::string& line, const char* key, std::string* out) {
  std::string needle = std::string("\"") + key + "\":\"";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  size_t start = pos + needle.size();
  size_t end = line.find('"', start);
  if (end == std::string::npos) {
    return false;
  }
  *out = line.substr(start, end - start);
  return true;
}

bool Load(const std::string& path, MetricsFile* out) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "metrics_report: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    std::string type;
    std::string label;
    std::string name;
    if (!FindString(line, "type", &type)) {
      continue;
    }
    if (type == "meta") {
      continue;
    }
    FindString(line, "label", &label);
    FindString(line, "name", &name);
    std::string key = label + "/" + name;
    if (type == "series") {
      SeriesRec& s = out->series[key];
      FindString(line, "unit", &s.unit);
      FindNumber(line, "period_ns", &s.period_ns);
      FindNumber(line, "samples", &s.samples);
      FindNumber(line, "peak", &s.peak);
      FindNumber(line, "avg", &s.avg);
      FindNumber(line, "last", &s.last);
    } else if (type == "hist") {
      HistRec& h = out->hists[key];
      FindNumber(line, "count", &h.count);
      FindNumber(line, "min_ns", &h.min_ns);
      FindNumber(line, "max_ns", &h.max_ns);
      FindNumber(line, "p50_ns", &h.p50_ns);
      FindNumber(line, "p99_ns", &h.p99_ns);
      FindNumber(line, "p999_ns", &h.p999_ns);
    } else if (type == "alerts") {
      AlertRec& a = out->alerts[key];
      FindNumber(line, "window_ns", &a.window_ns);
      FindNumber(line, "target_ns", &a.target_ns);
      FindNumber(line, "budget", &a.budget);
      FindNumber(line, "windows", &a.windows);
      FindNumber(line, "alert_windows", &a.alert_windows);
      FindNumber(line, "first_alert_ns", &a.first_alert_ns);
      FindNumber(line, "worst_fraction", &a.worst_fraction);
    }
  }
  return true;
}

double Ms(double ns) { return ns / 1e6; }

int PrintReport(const std::string& path) {
  MetricsFile f;
  if (!Load(path, &f)) {
    return 2;
  }
  if (f.series.empty() && f.hists.empty() && f.alerts.empty()) {
    std::fprintf(stderr, "metrics_report: no timelines in %s\n", path.c_str());
    return 2;
  }
  std::printf("%s: %zu series, %zu histograms, %zu alert summaries\n",
              path.c_str(), f.series.size(), f.hists.size(), f.alerts.size());
  if (!f.series.empty()) {
    std::printf("\n%-40s %-6s %8s %10s %10s %10s\n", "series", "unit",
                "samples", "peak", "avg", "last");
    for (const auto& [key, s] : f.series) {
      std::printf("%-40s %-6s %8.0f %10.3f %10.3f %10.3f\n", key.c_str(),
                  s.unit.c_str(), s.samples, s.peak, s.avg, s.last);
    }
  }
  if (!f.hists.empty()) {
    std::printf("\n%-40s %8s %10s %10s %10s %10s\n", "histogram", "count",
                "p50(ms)", "p99(ms)", "p99.9(ms)", "max(ms)");
    for (const auto& [key, h] : f.hists) {
      std::printf("%-40s %8.0f %10.3f %10.3f %10.3f %10.3f\n", key.c_str(),
                  h.count, Ms(h.p50_ns), Ms(h.p99_ns), Ms(h.p999_ns),
                  Ms(h.max_ns));
    }
  }
  if (!f.alerts.empty()) {
    std::printf("\n%-40s %10s %8s %7s %9s %10s\n", "alert", "target(ms)",
                "windows", "alerts", "first(s)", "worst-frac");
    for (const auto& [key, a] : f.alerts) {
      std::printf("%-40s %10.1f %8.0f %7.0f %9.2f %10.4f\n", key.c_str(),
                  Ms(a.target_ns), a.windows, a.alert_windows,
                  a.first_alert_ns < 0 ? -1.0 : a.first_alert_ns / 1e9,
                  a.worst_fraction);
    }
  }
  return 0;
}

// Strips the "label/" prefix: tolerances are keyed by metric name so one
// `--tolerance swq_depth=0.5` covers that gauge under every scheduler.
std::string MetricName(const std::string& key) {
  size_t slash = key.rfind('/');
  return slash == std::string::npos ? key : key.substr(slash + 1);
}

int Diff(const std::string& old_path, const std::string& new_path,
         const report::Tolerances& tol) {
  MetricsFile o;
  MetricsFile n;
  if (!Load(old_path, &o) || !Load(new_path, &n)) {
    return 2;
  }
  std::printf("diff: %s -> %s (default tolerance %.0f%% + %.2f absolute)\n",
              old_path.c_str(), new_path.c_str(), tol.def * 100, tol.atol);
  std::vector<report::Offender> offenders;
  auto gate = [&](const std::string& key, const char* what, double oldv,
                  double newv, const std::string& unit) {
    double t = tol.For(MetricName(key));
    if (report::GateIncrease(oldv, newv, t, tol.atol)) {
      offenders.push_back({key + " " + what, oldv, newv, t, unit});
    }
  };
  for (const auto& [key, os] : o.series) {
    auto it = n.series.find(key);
    if (it == n.series.end()) {
      offenders.push_back({key + " (missing in new)", os.peak, 0,
                           tol.For(MetricName(key)), os.unit});
      continue;
    }
    gate(key, "peak", os.peak, it->second.peak, os.unit);
    gate(key, "avg", os.avg, it->second.avg, os.unit);
  }
  for (const auto& [key, oh] : o.hists) {
    auto it = n.hists.find(key);
    if (it == n.hists.end()) {
      offenders.push_back({key + " (missing in new)", Ms(oh.p999_ns), 0,
                           tol.For(MetricName(key)), "ms"});
      continue;
    }
    gate(key, "p999", Ms(oh.p999_ns), Ms(it->second.p999_ns), "ms");
  }
  for (const auto& [key, oa] : o.alerts) {
    auto it = n.alerts.find(key);
    if (it == n.alerts.end()) {
      continue;  // alerts only exist for runs with SLO'd groups
    }
    gate(key, "alert_windows", oa.alert_windows, it->second.alert_windows,
         "windows");
  }
  std::printf("compared %zu series, %zu histograms, %zu alert summaries\n",
              o.series.size(), o.hists.size(), o.alerts.size());
  if (!offenders.empty()) {
    report::PrintOffenders(offenders);
    std::printf("%zu timeline metric(s) regressed beyond tolerance\n",
                offenders.size());
    return 1;
  }
  std::printf("no timeline regression beyond tolerance\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string diff_old;
  std::string diff_new;
  std::string file;
  report::Tolerances tol;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--diff") {
      diff_old = next("--diff");
      diff_new = next("--diff");
    } else if (arg == "--tolerance") {
      std::string spec = next("--tolerance");
      if (!tol.ParseFlag(spec)) {
        std::fprintf(stderr, "bad --tolerance spec: %s\n", spec.c_str());
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: metrics_report TIMELINES.jsonl\n"
                  "       metrics_report --diff OLD.jsonl NEW.jsonl"
                  " [--tolerance NAME=FRACTION]...\n");
      return 0;
    } else {
      file = arg;
    }
  }
  if (!diff_old.empty()) {
    return Diff(diff_old, diff_new, tol);
  }
  if (file.empty()) {
    std::fprintf(stderr, "no metrics file given (see --help)\n");
    return 2;
  }
  return PrintReport(file);
}
