// Randomized differential stress runner.
//
// Campaign mode (default): generate one scenario per seed (random workload
// program x random stack config), execute it under the cross-config oracles
// (completion, conservation, span accounting, crash consistency, mq(1,1) ==
// legacy, cross-scheduler content), minimize any failure (config axes +
// op-level ddmin), and write a self-contained repro JSON per failure.
//
//   stress_runner --seeds 200 --out-dir stress-out
//   stress_runner --seeds 100000 --budget 30 --out-dir stress-out
//   stress_runner --seeds 50 --control drop-completion   # oracle self-test
//
// Replay mode: re-execute a repro file and verify the recorded failure
// reproduces byte-for-byte. `--metrics PATH` additionally samples the
// telemetry gauges during the replay and writes the timeline JSONL
// (src/obs/metrics; readable by metrics_report) — queue depths and device
// occupancy around a failure are often the fastest way to see *why* a seed
// went wrong. Campaign mode ignores the flag (workers run on their own
// threads; the hub is per-thread).
//
//   stress_runner --replay stress-out/repro-seed42.json --metrics tl.jsonl
//
// Exit codes: 0 = clean campaign / failure reproduced; 1 = failures found /
// replay mismatch; 2 = usage or I/O error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "src/core/sched_factory.h"
#include "src/obs/metrics_global.h"
#include "src/sched/policy.h"
#include "src/stress/runner.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: stress_runner [--seeds N] [--seed-start N]\n"
               "                     [--budget SECONDS] [--out-dir DIR]\n"
               "                     [--jobs N] [--no-minimize]\n"
               "                     [--no-content-diff] [--no-mq-equiv]\n"
               "                     [--control NAME] [--sched NAME]\n"
               "                     [--max-ops N] [--verbose]\n"
               "       stress_runner --replay FILE [--metrics TL.jsonl]\n"
               "controls: skip-preflush | misordered-elevator | "
               "drop-completion\n");
  return 2;
}

bool ParseLong(const char* s, long* out) {
  char* end = nullptr;
  long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using splitio::NegativeControl;
  using splitio::StressOptions;

  StressOptions options;
  std::string replay_path;
  std::string metrics_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    long v = 0;
    if (arg == "--seeds") {
      const char* val = next();
      if (val == nullptr || !ParseLong(val, &v) || v < 1) {
        return Usage();
      }
      options.num_seeds = static_cast<int>(v);
    } else if (arg == "--seed-start") {
      const char* val = next();
      if (val == nullptr || !ParseLong(val, &v) || v < 0) {
        return Usage();
      }
      options.seed_start = static_cast<uint64_t>(v);
    } else if (arg == "--budget") {
      const char* val = next();
      if (val == nullptr || !ParseLong(val, &v) || v < 1) {
        return Usage();
      }
      options.budget_seconds = static_cast<double>(v);
    } else if (arg == "--out-dir") {
      const char* val = next();
      if (val == nullptr) {
        return Usage();
      }
      options.out_dir = val;
    } else if (arg == "--jobs") {
      // 0 = one worker per hardware thread. Output stays in seed order
      // regardless of the worker count (see StressOptions::jobs).
      const char* val = next();
      if (val == nullptr || !ParseLong(val, &v) || v < 0) {
        return Usage();
      }
      options.jobs = static_cast<int>(v);
      if (options.jobs == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        options.jobs = hw > 0 ? static_cast<int>(hw) : 1;
      }
    } else if (arg == "--no-minimize") {
      options.minimize = false;
    } else if (arg == "--no-content-diff") {
      options.oracle.run_content_differential = false;
    } else if (arg == "--no-mq-equiv") {
      options.oracle.run_mq_equivalence = false;
    } else if (arg == "--control") {
      const char* val = next();
      if (val == nullptr ||
          !splitio::NegativeControlFromName(val, &options.force_control) ||
          options.force_control == NegativeControl::kNone) {
        return Usage();
      }
    } else if (arg == "--sched") {
      // Canonical kind ("split-deadline") or any registered PolicySpec name
      // ("deadline-token"); both pin every generated scenario's scheduler.
      const char* val = next();
      if (val == nullptr) {
        return Usage();
      }
      if (splitio::SchedKindFromName(val, &options.pinned_sched)) {
        options.pin_sched = true;
      } else if (splitio::NamedPolicySpec(val, &options.pinned_spec)) {
        options.pin_spec = true;
      } else {
        std::fprintf(stderr, "stress_runner: %s\n",
                     splitio::UnknownSchedMessage(val).c_str());
        return 2;
      }
    } else if (arg == "--max-ops") {
      const char* val = next();
      if (val == nullptr || !ParseLong(val, &v) || v < 1) {
        return Usage();
      }
      options.gen.max_ops = static_cast<int>(v);
      options.gen.min_ops = std::min(options.gen.min_ops, options.gen.max_ops);
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--replay") {
      const char* val = next();
      if (val == nullptr) {
        return Usage();
      }
      replay_path = val;
    } else if (arg == "--metrics") {
      const char* val = next();
      if (val == nullptr) {
        return Usage();
      }
      metrics_path = val;
    } else {
      return Usage();
    }
  }

  if (!replay_path.empty()) {
    if (!metrics_path.empty()) {
      splitio::obs::EnableGlobalMetrics(metrics_path, "", 0);
    }
    // Resolve before opening (and echo the result): repro paths used to be
    // CWD-relative only, so the same command line worked from the repo root
    // but not from build/ where the nightly workflow runs.
    std::string resolved =
        splitio::ResolveReproPath(replay_path, argv[0] ? argv[0] : "");
    std::cout << "replaying: " << resolved << "\n";
    std::string message;
    int rc = splitio::ReplayRepro(resolved, &message);
    std::cout << message << "\n";
    splitio::obs::FinalizeGlobalMetrics();
    return rc;
  }

  if (!metrics_path.empty()) {
    std::fprintf(stderr,
                 "stress_runner: --metrics only applies to --replay; "
                 "ignored\n");
  }
  splitio::StressReport report = splitio::RunStress(options, &std::cout);
  return report.ok() ? 0 : 1;
}
