// Bench runner: executes bench binaries, measures them, and emits a single
// machine-readable BENCH_results.json so perf changes can be compared
// run-over-run.
//
// Usage:
//   bench_runner [--out results.json] [--outdir dir] [--only substr]
//                [--jobs N] <bench binary>...
//   bench_runner --compare old.json new.json [--threshold 0.10]
//   bench_runner --validate results.json
//
// For each bench the runner forks/execs the binary with stdout+stderr
// redirected to <outdir>/<name>.txt (the paper-fidelity output, kept for
// eyeballing), measures wall-clock time and peak RSS (wait4 rusage), and
// parses the BENCHJSON line the bench harness prints at exit (total
// simulator events, per-layer counters, named metrics). The derived
// headline metric is events_per_sec = events_processed / wall seconds.
//
// --jobs N forks up to N benches concurrently (0 = one per core). Each
// bench is still its own process with its own capture file, and the results
// array stays in input order, so the JSON is independent of completion
// order. Wall-clock and events/sec of co-scheduled benches contend for
// cores, so keep the default (sequential) wherever the numbers feed a perf
// gate; parallel mode is for turnaround (bench_all_parallel, local dev).
//
// --compare reads two BENCH_results.json files produced by this runner and
// reports per-bench deltas; it exits non-zero if any bench's events_per_sec
// regressed by more than --threshold (default 10%), which is what CI gates
// on.
#include <fcntl.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

struct BenchResult {
  std::string name;
  int exit_code = -1;
  double wall_ms = 0;
  long max_rss_kb = 0;
  double events_processed = 0;
  double events_per_sec = 0;
  // Raw counters and named metrics parsed from the BENCHJSON line,
  // preserved verbatim (key -> value).
  std::vector<std::pair<std::string, double>> counters;
  std::vector<std::pair<std::string, double>> metrics;
  // Per-stack counter deltas (label -> flat counter object), present only
  // when the bench recorded them (bench/common/report.h "per_stack").
  std::vector<std::pair<std::string, std::vector<std::pair<std::string, double>>>>
      per_stack;
};

double MonotonicMs() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) / 1e6;
}

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Finds `"key"` at or after `from` and returns the index of its value (just
// past the colon, whitespace skipped), so styled JSON (spaces/newlines after
// colons, e.g. from a Python or jq round-trip) parses the same as the
// compact form this tool writes. Returns npos if the key is absent.
size_t FindValuePos(const std::string& s, const std::string& key,
                    size_t from = 0) {
  std::string needle = "\"" + key + "\"";
  size_t pos = s.find(needle, from);
  while (pos != std::string::npos) {
    size_t p = pos + needle.size();
    while (p < s.size() && std::isspace(static_cast<unsigned char>(s[p]))) {
      ++p;
    }
    if (p < s.size() && s[p] == ':') {
      ++p;
      while (p < s.size() && std::isspace(static_cast<unsigned char>(s[p]))) {
        ++p;
      }
      return p;
    }
    // Matched inside a string value rather than a key; keep looking.
    pos = s.find(needle, pos + 1);
  }
  return std::string::npos;
}

// Finds `"key": <number>` at or after `from`; returns true and the number.
bool FindNumber(const std::string& s, const std::string& key, double* out,
                size_t from = 0) {
  size_t pos = FindValuePos(s, key, from);
  if (pos == std::string::npos) {
    return false;
  }
  *out = std::strtod(s.c_str() + pos, nullptr);
  return true;
}

// Parses the `"name":{...}` object at/after `from` into key/value pairs.
// Assumes the flat `"key":number` layout the bench harness emits.
std::vector<std::pair<std::string, double>> ParseFlatObject(
    const std::string& s, const std::string& name, size_t from) {
  std::vector<std::pair<std::string, double>> pairs;
  std::string needle = "\"" + name + "\":{";
  size_t pos = s.find(needle, from);
  if (pos == std::string::npos) {
    return pairs;
  }
  pos += needle.size();
  size_t end = s.find('}', pos);
  if (end == std::string::npos) {
    return pairs;
  }
  while (pos < end) {
    size_t kq1 = s.find('"', pos);
    if (kq1 == std::string::npos || kq1 >= end) {
      break;
    }
    size_t kq2 = s.find('"', kq1 + 1);
    if (kq2 == std::string::npos || kq2 >= end) {
      break;
    }
    std::string key = s.substr(kq1 + 1, kq2 - kq1 - 1);
    size_t colon = s.find(':', kq2);
    if (colon == std::string::npos || colon >= end) {
      break;
    }
    double value = std::strtod(s.c_str() + colon + 1, nullptr);
    pairs.emplace_back(key, value);
    size_t comma = s.find(',', colon);
    if (comma == std::string::npos || comma >= end) {
      break;
    }
    pos = comma + 1;
  }
  return pairs;
}

// Parses `"per_stack":{"label":{flat},...}` at/after `from`: one level of
// nesting, each inner object flat (the layout bench/common/report.h emits).
std::vector<std::pair<std::string, std::vector<std::pair<std::string, double>>>>
ParsePerStack(const std::string& s, size_t from) {
  std::vector<std::pair<std::string, std::vector<std::pair<std::string, double>>>>
      stacks;
  std::string needle = "\"per_stack\":{";
  size_t pos = s.find(needle, from);
  if (pos == std::string::npos) {
    return stacks;
  }
  pos += needle.size();
  while (pos < s.size() && s[pos] == '"') {
    size_t label_end = s.find('"', pos + 1);
    if (label_end == std::string::npos) {
      break;
    }
    std::string label = s.substr(pos + 1, label_end - pos - 1);
    size_t brace = s.find('{', label_end);
    if (brace == std::string::npos) {
      break;
    }
    size_t close = s.find('}', brace);
    if (close == std::string::npos) {
      break;
    }
    // Reuse the flat-object parser on the inner "<label>":{...} span.
    stacks.emplace_back(label, ParseFlatObject(s, label, pos));
    pos = close + 1;
    if (pos < s.size() && s[pos] == ',') {
      ++pos;
    }
  }
  return stacks;
}

void ParseBenchJson(const std::string& output, BenchResult* r) {
  // Use the last BENCHJSON line in case the bench printed one mid-run.
  size_t pos = output.rfind("BENCHJSON ");
  if (pos == std::string::npos) {
    return;
  }
  size_t eol = output.find('\n', pos);
  std::string line = output.substr(pos, eol == std::string::npos
                                            ? std::string::npos
                                            : eol - pos);
  FindNumber(line, "events_processed", &r->events_processed);
  r->counters = ParseFlatObject(line, "counters", 0);
  r->metrics = ParseFlatObject(line, "metrics", 0);
  r->per_stack = ParsePerStack(line, 0);
}

bool RunOne(const std::string& path, const std::string& outdir,
            BenchResult* r) {
  r->name = Basename(path);
  std::string capture = outdir + "/" + r->name + ".txt";
  double start_ms = MonotonicMs();
  pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    return false;
  }
  if (pid == 0) {
    int fd = open(capture.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      dup2(fd, STDOUT_FILENO);
      dup2(fd, STDERR_FILENO);
      close(fd);
    }
    execl(path.c_str(), path.c_str(), static_cast<char*>(nullptr));
    std::perror("execl");
    _exit(127);
  }
  int status = 0;
  rusage ru{};
  if (wait4(pid, &status, 0, &ru) < 0) {
    std::perror("wait4");
    return false;
  }
  r->wall_ms = MonotonicMs() - start_ms;
  r->max_rss_kb = ru.ru_maxrss;  // KB on Linux
  r->exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : 128;
  ParseBenchJson(ReadFile(capture), r);
  if (r->wall_ms > 0) {
    r->events_per_sec = r->events_processed / (r->wall_ms / 1e3);
  }
  return true;
}

void WriteJson(const std::string& out_path,
               const std::vector<BenchResult>& results) {
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::perror("fopen");
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema_version\": 1,\n  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(f,
                 "    {\"bench\":\"%s\",\"exit_code\":%d,"
                 "\"wall_ms\":%.1f,\"events_processed\":%.0f,"
                 "\"events_per_sec\":%.1f,\"max_rss_kb\":%ld",
                 r.name.c_str(), r.exit_code, r.wall_ms, r.events_processed,
                 r.events_per_sec, r.max_rss_kb);
    std::fprintf(f, ",\"counters\":{");
    for (size_t j = 0; j < r.counters.size(); ++j) {
      std::fprintf(f, "%s\"%s\":%.0f", j > 0 ? "," : "",
                   r.counters[j].first.c_str(), r.counters[j].second);
    }
    std::fprintf(f, "},\"metrics\":{");
    for (size_t j = 0; j < r.metrics.size(); ++j) {
      std::fprintf(f, "%s\"%s\":%.17g", j > 0 ? "," : "",
                   r.metrics[j].first.c_str(), r.metrics[j].second);
    }
    std::fprintf(f, "}");
    if (!r.per_stack.empty()) {
      std::fprintf(f, ",\"per_stack\":{");
      for (size_t j = 0; j < r.per_stack.size(); ++j) {
        std::fprintf(f, "%s\"%s\":{", j > 0 ? "," : "",
                     r.per_stack[j].first.c_str());
        const auto& pairs = r.per_stack[j].second;
        for (size_t k = 0; k < pairs.size(); ++k) {
          std::fprintf(f, "%s\"%s\":%.0f", k > 0 ? "," : "",
                       pairs[k].first.c_str(), pairs[k].second);
        }
        std::fprintf(f, "}");
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

// ---- compare mode ----

struct CompareEntry {
  double wall_ms = 0;
  double events_per_sec = 0;
};

std::map<std::string, CompareEntry> LoadResults(const std::string& path) {
  std::map<std::string, CompareEntry> entries;
  std::string s = ReadFile(path);
  size_t pos = 0;
  while ((pos = FindValuePos(s, "bench", pos)) != std::string::npos) {
    if (pos >= s.size() || s[pos] != '"') {
      continue;  // not a string value; resume after this occurrence
    }
    size_t name_start = pos + 1;
    size_t name_end = s.find('"', name_start);
    if (name_end == std::string::npos) {
      break;
    }
    std::string name = s.substr(name_start, name_end - name_start);
    CompareEntry e;
    FindNumber(s, "wall_ms", &e.wall_ms, name_end);
    FindNumber(s, "events_per_sec", &e.events_per_sec, name_end);
    entries[name] = e;
    pos = name_end;
  }
  return entries;
}

int Compare(const std::string& old_path, const std::string& new_path,
            double threshold) {
  auto olds = LoadResults(old_path);
  auto news = LoadResults(new_path);
  if (olds.empty() || news.empty()) {
    std::fprintf(stderr, "compare: could not load results (%zu old, %zu new)\n",
                 olds.size(), news.size());
    return 2;
  }
  std::printf("%-40s %12s %12s %8s\n", "bench", "old ev/s", "new ev/s",
              "delta");
  int regressions = 0;
  for (const auto& [name, n] : news) {
    auto it = olds.find(name);
    if (it == olds.end()) {
      std::printf("%-40s %12s %12.0f %8s\n", name.c_str(), "(new)",
                  n.events_per_sec, "-");
      continue;
    }
    const CompareEntry& o = it->second;
    double delta = o.events_per_sec > 0
                       ? (n.events_per_sec - o.events_per_sec) /
                             o.events_per_sec
                       : 0;
    bool regressed = delta < -threshold;
    regressions += regressed ? 1 : 0;
    std::printf("%-40s %12.0f %12.0f %+7.1f%%%s\n", name.c_str(),
                o.events_per_sec, n.events_per_sec, delta * 100,
                regressed ? "  REGRESSION" : "");
  }
  if (regressions > 0) {
    std::printf("\n%d bench(es) regressed more than %.0f%% in events/sec\n",
                regressions, threshold * 100);
    return 1;
  }
  std::printf("\nno events/sec regression beyond %.0f%%\n", threshold * 100);
  return 0;
}

// ---- validate mode ----

// Structural check of a results file (CI's smoke gate): at least one bench
// entry, every entry exited 0, and every entry carries a positive
// events_per_sec. Replaces the old shell greps, which matched substrings of
// the raw JSON and silently passed on empty or truncated files.
int Validate(const std::string& path) {
  std::string s = ReadFile(path);
  if (s.empty()) {
    std::fprintf(stderr, "validate: %s is missing or empty\n", path.c_str());
    return 1;
  }
  int entries = 0;
  int bad = 0;
  size_t pos = 0;
  while ((pos = FindValuePos(s, "bench", pos)) != std::string::npos) {
    if (pos >= s.size() || s[pos] != '"') {
      continue;
    }
    size_t name_start = pos + 1;
    size_t name_end = s.find('"', name_start);
    if (name_end == std::string::npos) {
      break;
    }
    std::string name = s.substr(name_start, name_end - name_start);
    ++entries;
    double exit_code = -1;
    double events_per_sec = 0;
    bool has_exit = FindNumber(s, "exit_code", &exit_code, name_end);
    bool has_eps = FindNumber(s, "events_per_sec", &events_per_sec, name_end);
    if (!has_exit || exit_code != 0) {
      std::fprintf(stderr, "validate: %s: exit_code %s\n", name.c_str(),
                   has_exit ? std::to_string(static_cast<int>(exit_code)).c_str()
                            : "missing");
      ++bad;
    }
    if (!has_eps || events_per_sec <= 0) {
      std::fprintf(stderr, "validate: %s: events_per_sec %s\n", name.c_str(),
                   has_eps ? "not positive" : "missing");
      ++bad;
    }
    pos = name_end;
  }
  if (entries == 0) {
    std::fprintf(stderr, "validate: no bench entries in %s\n", path.c_str());
    return 1;
  }
  if (bad > 0) {
    std::fprintf(stderr, "validate: %d problem(s) across %d bench(es)\n", bad,
                 entries);
    return 1;
  }
  std::printf("validate: %d bench(es) ok in %s\n", entries, path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_results.json";
  std::string outdir = "bench_out";
  std::string only;
  std::string compare_old;
  std::string compare_new;
  std::string validate_path;
  double threshold = 0.10;
  int jobs = 1;
  std::vector<std::string> benches;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out = next("--out");
    } else if (arg == "--outdir") {
      outdir = next("--outdir");
    } else if (arg == "--only") {
      only = next("--only");
    } else if (arg == "--threshold") {
      threshold = std::strtod(next("--threshold").c_str(), nullptr);
    } else if (arg == "--jobs") {
      jobs = std::atoi(next("--jobs").c_str());
    } else if (arg == "--compare") {
      compare_old = next("--compare");
      compare_new = next("--compare");
    } else if (arg == "--validate") {
      validate_path = next("--validate");
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bench_runner [--out FILE] [--outdir DIR] [--only SUBSTR] "
          "[--jobs N] BENCH...\n       bench_runner --compare OLD NEW "
          "[--threshold FRACTION]\n       bench_runner --validate RESULTS\n");
      return 0;
    } else {
      benches.push_back(arg);
    }
  }

  if (!compare_old.empty()) {
    return Compare(compare_old, compare_new, threshold);
  }
  if (!validate_path.empty()) {
    return Validate(validate_path);
  }
  if (benches.empty()) {
    std::fprintf(stderr, "no bench binaries given (see --help)\n");
    return 2;
  }
  mkdir(outdir.c_str(), 0755);  // EEXIST is fine

  std::vector<std::string> selected;
  for (const std::string& path : benches) {
    if (!only.empty() && Basename(path).find(only) == std::string::npos) {
      continue;
    }
    selected.push_back(path);
  }

  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
  }
  jobs = std::max(1, std::min<int>(jobs, static_cast<int>(selected.size())));

  // Slot per selected bench, filled in any completion order; the results
  // array is assembled in input order afterwards so the JSON (and the
  // --compare table keyed off it) never depends on scheduling.
  std::vector<BenchResult> slots(selected.size());
  std::vector<char> ran(selected.size(), 0);
  std::atomic<size_t> next_index{0};
  std::mutex print_mutex;
  auto worker = [&]() {
    for (;;) {
      size_t i = next_index.fetch_add(1);
      if (i >= selected.size()) {
        return;
      }
      BenchResult r;
      bool ok = RunOne(selected[i], outdir, &r);
      std::lock_guard<std::mutex> lock(print_mutex);
      std::printf("[%2zu/%zu] %-40s ", i + 1, selected.size(),
                  Basename(selected[i]).c_str());
      if (ok) {
        std::printf("%8.0f ms  %12.0f events  %10.0f ev/s  rss %ld KB%s\n",
                    r.wall_ms, r.events_processed, r.events_per_sec,
                    r.max_rss_kb, r.exit_code == 0 ? "" : "  FAILED");
      } else {
        std::printf("%8s\n", "ERROR");
      }
      std::fflush(stdout);
      slots[i] = std::move(r);
      ran[i] = ok ? 1 : 0;
    }
  };
  if (jobs == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(jobs));
    for (int j = 0; j < jobs; ++j) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }

  std::vector<BenchResult> results;
  int failures = 0;
  for (size_t i = 0; i < selected.size(); ++i) {
    if (!ran[i]) {
      ++failures;
      continue;
    }
    failures += slots[i].exit_code == 0 ? 0 : 1;
    results.push_back(std::move(slots[i]));
  }
  if (results.empty() && failures == 0) {
    // A typo'd --only would otherwise write an empty results file and
    // report success, silently masking every bench in CI.
    std::fprintf(stderr, "--only '%s' matched no bench binaries\n",
                 only.c_str());
    return 2;
  }
  WriteJson(out, results);
  std::printf("\nwrote %s (%zu benches, %d failed)\n", out.c_str(),
              results.size(), failures);
  return failures == 0 ? 0 : 1;
}
