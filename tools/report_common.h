// Per-metric tolerance gating shared by the offline report tools
// (tools/metrics_report, tools/trace_stats). Standalone — no splitio
// dependency — like the tools that include it.
//
// A diff gates on *increases* only: `new > old * (1 + tol) + atol`. The
// relative tolerance absorbs proportional noise; the absolute floor keeps
// tiny denominators (an old mean of 0.001 ms, a queue-depth peak of 1) from
// turning round-off into a regression verdict. Tolerances are per metric
// name with a default, overridable from the command line as
// `--tolerance NAME=FRACTION`; every gated offender carries the metric's
// name and the numbers, so CI failures say *what* regressed, not just that
// something did.
#ifndef TOOLS_REPORT_COMMON_H_
#define TOOLS_REPORT_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace report {

struct Tolerances {
  double def = 0.10;   // default relative tolerance
  double atol = 0.25;  // absolute slack added on top (metric units)
  std::map<std::string, double> by_name;

  double For(const std::string& name) const {
    auto it = by_name.find(name);
    return it != by_name.end() ? it->second : def;
  }

  // Parses "NAME=FRACTION" (a bare "FRACTION" sets the default). Returns
  // false on a malformed spec.
  bool ParseFlag(const std::string& spec) {
    size_t eq = spec.find('=');
    char* end = nullptr;
    if (eq == std::string::npos) {
      double v = std::strtod(spec.c_str(), &end);
      if (end == spec.c_str() || *end != '\0') {
        return false;
      }
      def = v;
      return true;
    }
    std::string name = spec.substr(0, eq);
    std::string value = spec.substr(eq + 1);
    double v = std::strtod(value.c_str(), &end);
    if (name.empty() || end == value.c_str() || *end != '\0') {
      return false;
    }
    by_name[name] = v;
    return true;
  }
};

// True when `newv` exceeds `oldv` beyond the allowed increase.
inline bool GateIncrease(double oldv, double newv, double tol, double atol) {
  return newv > oldv * (1.0 + tol) + atol;
}

// One gated regression: which metric, where, and by how much.
struct Offender {
  std::string name;  // "sched/metric" or "sched/layer"
  double oldv = 0;
  double newv = 0;
  double tol = 0;
  std::string unit;
};

inline void PrintOffenders(const std::vector<Offender>& offenders) {
  for (const Offender& o : offenders) {
    double delta = o.oldv > 0 ? (o.newv - o.oldv) / o.oldv * 100.0 : 0.0;
    std::printf("  REGRESSION %s: %.3f -> %.3f %s (%+.1f%% > %.0f%%)\n",
                o.name.c_str(), o.oldv, o.newv, o.unit.c_str(), delta,
                o.tol * 100.0);
  }
}

}  // namespace report

#endif  // TOOLS_REPORT_COMMON_H_
