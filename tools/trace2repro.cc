// trace2repro: converts a real trace slice (blktrace text or MSR CSV) into
// a stress repro file that `stress_runner --replay` re-executes
// byte-identically.
//
// Usage:
//   trace2repro TRACE [--out FILE] [--seed N] [--sched NAME]
//               [--control NAME] [--max-ops N] [--no-minimize]
//
// A healthy slice records the reserved oracle "clean" (replay then asserts
// the slice keeps passing every invariant oracle). To demonstrate a
// failing repro end to end, inject a negative control: with e.g.
// `--control drop-completion` the recorded oracle is a real failure, the
// reconstructed program is ddmin-minimized before packaging, and replay
// compares the failure detail byte-for-byte.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "src/stress/runner.h"
#include "src/stress/trace_repro.h"
#include "src/workload/trace/parse.h"

int main(int argc, char** argv) {
  using namespace splitio;
  std::string trace_path;
  std::string out_path;
  TraceReproOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = next("--out");
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next("--seed"), nullptr, 0);
    } else if (arg == "--sched") {
      const char* name = next("--sched");
      if (!SchedKindFromName(name, &options.stack.sched)) {
        std::fprintf(stderr, "unknown scheduler %s\n", name);
        return 2;
      }
    } else if (arg == "--control") {
      const char* name = next("--control");
      if (!NegativeControlFromName(name, &options.stack.control)) {
        std::fprintf(stderr, "unknown negative control %s\n", name);
        return 2;
      }
    } else if (arg == "--max-ops") {
      options.reconstruct.max_ops =
          std::strtoull(next("--max-ops"), nullptr, 0);
    } else if (arg == "--max-shrink-evals") {
      options.max_shrink_evals =
          static_cast<int>(std::strtol(next("--max-shrink-evals"), nullptr, 0));
    } else if (arg == "--no-minimize") {
      options.minimize = false;
    } else if (arg == "--no-content-diff") {
      options.oracle.run_content_differential = false;
    } else if (arg == "--no-mq-equiv") {
      options.oracle.run_mq_equivalence = false;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: trace2repro TRACE [--out FILE] [--seed N] "
                  "[--sched NAME] [--control NAME] [--max-ops N] "
                  "[--max-shrink-evals N] [--no-minimize] "
                  "[--no-content-diff] [--no-mq-equiv]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s (see --help)\n", arg.c_str());
      return 2;
    } else {
      trace_path = arg;
    }
  }
  if (trace_path.empty()) {
    std::fprintf(stderr, "no trace given (see --help)\n");
    return 2;
  }

  ingest::ParsedTrace parsed;
  ingest::TraceError terr;
  if (!ingest::LoadTraceFile(trace_path, ingest::TraceFormat::kAuto, &parsed,
                             &terr)) {
    std::fprintf(stderr, "trace2repro: %s: %s\n", trace_path.c_str(),
                 terr.Describe().c_str());
    return 2;
  }

  StressFailure repro;
  std::string error;
  if (!TraceToRepro(parsed, options, &repro, &error)) {
    std::fprintf(stderr, "trace2repro: %s\n", error.c_str());
    return 2;
  }

  std::string json = ReproToJson(repro);
  if (out_path.empty()) {
    std::cout << json << "\n";
  } else {
    std::ofstream out(out_path, std::ios::trunc);
    out << json << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "trace2repro: cannot write %s\n",
                   out_path.c_str());
      return 2;
    }
  }
  std::fprintf(stderr,
               "trace2repro: %llu records -> %zu ops, oracle \"%s\"%s%s\n",
               static_cast<unsigned long long>(parsed.records.size()),
               repro.scenario.program.ops.size(), repro.oracle.c_str(),
               repro.minimized ? " (minimized)" : "",
               out_path.empty() ? "" : (", wrote " + out_path).c_str());
  return 0;
}
